//! The consolidation objective from the paper's future work (§6): "one
//! could be interested in a mapping whose goal is to minimize the amount of
//! hosts used in each emulation. Variations in the HMN heuristic in order
//! to attend such different objective functions are also subject of current
//! research."
//!
//! [`ConsolidatingHmn`] is such a variation: Hosting and Networking are
//! unchanged, but the Migration stage is replaced by a **drain** pass that
//! tries to empty lightly-used hosts entirely, packing their guests into
//! the remaining used hosts (first-fit by descending residual memory). A
//! host is drained only if *all* of its guests can be relocated — partial
//! drains would not reduce the hosts-used count and would hurt balance for
//! nothing.

use crate::astar_prune::AStarPruneConfig;
use crate::error::MapError;
use crate::hosting::{hosting_stage, links_by_descending_bw};
use crate::mapper::{MapOutcome, MapStats, Mapper};
use crate::networking::networking_stage;
use crate::state::PlacementState;
use emumap_graph::NodeId;
use emumap_model::{GuestId, Mapping, PhysicalTopology, VirtualEnvironment};
use rand::RngCore;
use std::time::Instant;

/// Statistics from a drain pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrainStats {
    /// Hosts emptied.
    pub hosts_drained: usize,
    /// Guests relocated.
    pub guests_moved: usize,
    /// Hosts in use after the pass.
    pub hosts_used_after: usize,
}

/// Tries to empty occupied hosts, starting from the least-occupied (fewest
/// guests, ties by id). Repeats until no host can be fully drained.
pub fn drain_stage(state: &mut PlacementState<'_>) -> DrainStats {
    assert!(state.is_complete(), "drain requires a complete assignment");
    let mut stats = DrainStats::default();

    'outer: loop {
        // Occupied hosts ordered by ascending guest count.
        let mut occupied: Vec<NodeId> = state
            .phys()
            .hosts()
            .iter()
            .copied()
            .filter(|&h| !state.guests_on(h).is_empty())
            .collect();
        occupied.sort_by_key(|&h| (state.guests_on(h).len(), h));

        for &victim in &occupied {
            if let Some(moved) = try_drain(state, victim, &occupied) {
                stats.hosts_drained += 1;
                stats.guests_moved += moved;
                continue 'outer; // re-plan from scratch: occupancy changed
            }
        }
        break;
    }

    stats.hosts_used_after = state
        .phys()
        .hosts()
        .iter()
        .filter(|&&h| !state.guests_on(h).is_empty())
        .count();
    stats
}

/// Attempts to move every guest off `victim` into the other occupied
/// hosts. All-or-nothing: rolls back and returns `None` if any guest
/// cannot be relocated; otherwise returns how many guests moved.
fn try_drain(state: &mut PlacementState<'_>, victim: NodeId, occupied: &[NodeId]) -> Option<usize> {
    let guests: Vec<GuestId> = state.guests_on(victim).to_vec();
    if guests.is_empty() {
        return None;
    }
    let mut moved: Vec<(GuestId, NodeId)> = Vec::with_capacity(guests.len());
    for g in &guests {
        // Destinations: other occupied hosts, fullest-memory-first so big
        // holes are preserved for big guests later (first-fit-decreasing
        // flavour).
        let mut dests: Vec<NodeId> = occupied
            .iter()
            .copied()
            .filter(|&h| h != victim && !state.guests_on(h).is_empty())
            .collect();
        dests.sort_by(|&a, &b| {
            state
                .residual()
                .mem(b)
                .cmp(&state.residual().mem(a))
                .then(a.cmp(&b))
        });
        let Some(dest) = dests.into_iter().find(|&h| state.fits(*g, h)) else {
            // Roll back what we moved so far.
            for (g, _) in moved {
                state
                    .migrate(g, victim)
                    .expect("guest came from the victim");
            }
            return None;
        };
        state.migrate(*g, dest).expect("fit checked");
        moved.push((*g, dest));
    }
    Some(moved.len())
}

/// HMN variant optimizing hosts-used instead of load balance.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConsolidatingHmn {
    /// A\*Prune configuration for the Networking stage.
    pub astar: AStarPruneConfig,
}

impl Mapper for ConsolidatingHmn {
    fn name(&self) -> &str {
        "HMN-consolidate"
    }

    fn map(
        &self,
        phys: &PhysicalTopology,
        venv: &VirtualEnvironment,
        _rng: &mut dyn RngCore,
    ) -> Result<MapOutcome, MapError> {
        let start = Instant::now();
        let links = links_by_descending_bw(venv);
        let mut state = PlacementState::new(phys, venv);

        let t = Instant::now();
        hosting_stage(&mut state, &links)?;
        let placement_time = t.elapsed();

        let t = Instant::now();
        let drain = drain_stage(&mut state);
        let migration_time = t.elapsed();

        let t = Instant::now();
        let (routes, net) = networking_stage(&mut state, &links, &self.astar)?;
        let networking_time = t.elapsed();

        let stats = MapStats {
            attempts: 1,
            migrations: drain.guests_moved,
            routed_links: net.routed_links,
            intra_host_links: net.intra_host_links,
            astar_expansions: net.search.expanded,
            astar_pushed: net.search.pushed,
            dijkstra_runs: net.dijkstra_runs,
            ar_cache_hits: net.ar_cache_hits,
            placement_time,
            migration_time,
            networking_time,
            total_time: start.elapsed(),
            ..Default::default()
        };
        let mapping = Mapping::new(state.into_placement(), routes);
        Ok(MapOutcome::new(phys, venv, mapping, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emumap_graph::generators;
    use emumap_model::{
        validate_mapping, GuestSpec, HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips, StorGb,
        VLinkSpec, VmmOverhead,
    };
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn phys(n: usize) -> PhysicalTopology {
        PhysicalTopology::from_shape(
            &generators::ring(n),
            std::iter::repeat(HostSpec::new(Mips(2000.0), MemMb(1024), StorGb(1000.0))),
            LinkSpec::new(Kbps::from_gbps(1.0), Millis(5.0)),
            VmmOverhead::NONE,
        )
    }

    #[test]
    fn drain_consolidates_spread_guests() {
        let p = phys(4);
        let mut venv = VirtualEnvironment::new();
        let guests: Vec<_> = (0..4)
            .map(|_| venv.add_guest(GuestSpec::new(Mips(100.0), MemMb(128), StorGb(10.0))))
            .collect();
        let mut st = PlacementState::new(&p, &venv);
        // One guest per host — maximally spread.
        for (i, &g) in guests.iter().enumerate() {
            st.assign(g, p.hosts()[i]).unwrap();
        }
        let stats = drain_stage(&mut st);
        // 1024 MB hosts can take all four 128 MB guests: one host suffices.
        assert_eq!(stats.hosts_used_after, 1);
        assert!(stats.hosts_drained >= 3);
    }

    #[test]
    fn drain_is_all_or_nothing() {
        let p = phys(2);
        let mut venv = VirtualEnvironment::new();
        // Host capacity 1024 MB. Host 0: one 600 MB guest. Host 1: two
        // guests (600 + 300). Neither host can absorb the other fully.
        let a = venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(600), StorGb(1.0)));
        let b = venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(600), StorGb(1.0)));
        let c = venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(300), StorGb(1.0)));
        let mut st = PlacementState::new(&p, &venv);
        st.assign(a, p.hosts()[0]).unwrap();
        st.assign(b, p.hosts()[1]).unwrap();
        st.assign(c, p.hosts()[1]).unwrap();
        let stats = drain_stage(&mut st);
        assert_eq!(stats.hosts_drained, 0);
        assert_eq!(stats.hosts_used_after, 2);
        // Nothing moved.
        assert_eq!(st.host_of(a), Some(p.hosts()[0]));
        assert_eq!(st.host_of(b), Some(p.hosts()[1]));
        assert_eq!(st.host_of(c), Some(p.hosts()[1]));
    }

    #[test]
    fn consolidating_hmn_uses_fewer_hosts_than_plain_hmn() {
        use crate::hmn::Hmn;
        let p = phys(8);
        let mut venv = VirtualEnvironment::new();
        let ids: Vec<_> = (0..8)
            .map(|_| venv.add_guest(GuestSpec::new(Mips(100.0), MemMb(128), StorGb(10.0))))
            .collect();
        for w in ids.windows(2) {
            venv.add_link(w[0], w[1], VLinkSpec::new(Kbps(100.0), Millis(60.0)));
        }
        let mut rng = SmallRng::seed_from_u64(1);
        let plain = Hmn::new().map(&p, &venv, &mut rng).unwrap();
        let packed = ConsolidatingHmn::default()
            .map(&p, &venv, &mut rng)
            .unwrap();
        assert!(
            packed.mapping.hosts_used() <= plain.mapping.hosts_used(),
            "consolidation must not use more hosts ({} vs {})",
            packed.mapping.hosts_used(),
            plain.mapping.hosts_used()
        );
        assert_eq!(validate_mapping(&p, &venv, &packed.mapping), Ok(()));
    }

    #[test]
    fn drained_mapping_still_validates() {
        let p = phys(6);
        let mut venv = VirtualEnvironment::new();
        let ids: Vec<_> = (0..12)
            .map(|_| venv.add_guest(GuestSpec::new(Mips(50.0), MemMb(150), StorGb(20.0))))
            .collect();
        for w in ids.windows(2) {
            venv.add_link(w[0], w[1], VLinkSpec::new(Kbps(500.0), Millis(45.0)));
        }
        let out = ConsolidatingHmn::default()
            .map(&p, &venv, &mut SmallRng::seed_from_u64(2))
            .unwrap();
        assert_eq!(validate_mapping(&p, &venv, &out.mapping), Ok(()));
    }
}
