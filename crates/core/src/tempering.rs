//! Parallel-tempering placement search — N annealing replicas on a
//! temperature ladder, exchanging temperatures at deterministic round
//! checkpoints.
//!
//! Plain simulated annealing ([`Annealing`](crate::Annealing)) owns one
//! Markov chain whose temperature only falls; once cold it cannot climb
//! out of the basin it froze into. Parallel tempering (replica exchange)
//! runs several chains at *fixed* temperatures spanning cold to hot and
//! periodically proposes swapping the temperatures of adjacent rungs with
//! the Metropolis criterion `min(1, exp((1/T_i - 1/T_j)(E_i - E_j)))`.
//! Hot replicas tunnel between basins; accepted exchanges hand their
//! discoveries down the ladder to the cold rungs that exploit them. The
//! result at an equal proposal budget is never structurally worse than one
//! cold chain — the coldest rung *is* one — and on rugged landscapes it is
//! usually better.
//!
//! ### Determinism at any thread count
//!
//! Replicas are sharded across a [`ParallelRunner`] pool, one round per
//! `run` call (the call is a barrier). Each replica owns its private
//! `SmallRng` seeded from the master seed and its ladder index, so the
//! proposal stream of replica `k` is a pure function of `(instance, seed,
//! k)` — independent of which worker thread executes it. Exchange
//! decisions consume a *dedicated* swap RNG sequentially on the
//! coordinator between rounds. Outcomes are therefore bit-identical for 1,
//! 4 or 64 worker threads, which the determinism suite asserts.

use crate::astar_prune::AStarPruneConfig;
use crate::cache::MapCache;
use crate::error::MapError;
use crate::hosting::{hosting_stage, links_by_descending_bw};
use crate::mapper::{MapOutcome, MapStats, Mapper};
use crate::migration::migration_stage;
use crate::networking::networking_stage_with;
use crate::parallel::ParallelRunner;
use crate::state::PlacementState;
use emumap_graph::NodeId;
use emumap_model::{GuestId, Mapping, PhysicalTopology, VirtualEnvironment};
use emumap_trace::{Phase, PhaseCounters, TraceEvent};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::time::Instant;

/// Parallel-tempering configuration. The default ladder (8 replicas x
/// 50 rounds x 50 proposals) evaluates 20 000 proposals in total — the
/// same budget as [`AnnealingConfig`](crate::AnnealingConfig)'s default,
/// so `--mapper sa` and `--mapper pt` compare like for like.
#[derive(Clone, Copy, Debug)]
pub struct TemperingConfig {
    /// Replicas on the temperature ladder (>= 1).
    pub replicas: usize,
    /// Exchange rounds; replicas synchronize at each round boundary.
    pub rounds: usize,
    /// Metropolis proposals per replica per round.
    pub iterations_per_round: usize,
    /// Coldest rung's temperature as a fraction of the initial energy.
    pub min_temperature_factor: f64,
    /// Hottest rung's temperature as a fraction of the initial energy.
    pub max_temperature_factor: f64,
    /// Weight of the inter-host bandwidth energy term (as in
    /// [`AnnealingConfig`](crate::AnnealingConfig)).
    pub bandwidth_weight: f64,
    /// Seed every replica from HMN's Hosting+Migration fixpoint instead of
    /// an independent random placement per replica.
    pub seed_with_hosting: bool,
    /// Worker threads for the replica pool; `0` means one per core.
    pub threads: usize,
    /// A\*Prune configuration for the final routing pass.
    pub astar: AStarPruneConfig,
}

impl Default for TemperingConfig {
    fn default() -> Self {
        TemperingConfig {
            replicas: 8,
            rounds: 50,
            iterations_per_round: 50,
            min_temperature_factor: 0.01,
            max_temperature_factor: 0.5,
            bandwidth_weight: 0.5,
            seed_with_hosting: true,
            threads: 0,
            astar: AStarPruneConfig::default(),
        }
    }
}

impl TemperingConfig {
    /// Total Metropolis proposals across the whole ladder.
    pub fn total_proposals(&self) -> usize {
        self.replicas * self.rounds * self.iterations_per_round
    }
}

/// One rung of the ladder: a placement chain at a fixed temperature.
///
/// Owns everything its round needs (state, RNG, running energy), so a
/// round is a pure function of the replica value — the struct moves into
/// a worker, runs, and moves back.
struct Replica<'a> {
    state: PlacementState<'a>,
    rng: SmallRng,
    temperature: f64,
    energy: f64,
    bw_inter: f64,
    best_energy: f64,
    best_placement: Vec<NodeId>,
    accepted: usize,
    rejected: usize,
    proposals: usize,
}

impl Replica<'_> {
    /// Runs `iterations` single-guest move proposals at this replica's
    /// current temperature.
    fn run_round(
        &mut self,
        hosts: &[NodeId],
        iterations: usize,
        bw_enabled: bool,
        bw_weight: f64,
        bw_scale: f64,
    ) {
        let guest_count = self.state.venv().guest_count();
        if guest_count == 0 || hosts.len() < 2 {
            return;
        }
        let energy_of = |objective: f64, bw_inter: f64| {
            if bw_enabled {
                objective + bw_weight * bw_inter / bw_scale
            } else {
                objective
            }
        };
        for _ in 0..iterations {
            let g = GuestId::from_index(self.rng.gen_range(0..guest_count));
            let from = self.state.host_of(g).expect("complete");
            let to = hosts[self.rng.gen_range(0..hosts.len())];
            if to == from || !self.state.fits(g, to) {
                continue;
            }
            let objective_after = self.state.objective_if_migrated(g, to);
            let bw_after = if bw_enabled {
                self.bw_inter + self.state.inter_bandwidth_delta(g, to).value()
            } else {
                self.bw_inter
            };
            let proposed = energy_of(objective_after, bw_after);
            self.proposals += 1;
            let delta = proposed - self.energy;
            let accept = delta <= 0.0
                || self.rng.gen::<f64>() < (-delta / self.temperature.max(1e-12)).exp();
            if accept {
                self.state.migrate(g, to).expect("fit checked");
                self.energy = proposed;
                self.bw_inter = bw_after;
                self.accepted += 1;
                if proposed < self.best_energy {
                    self.best_energy = proposed;
                    for (i, slot) in self.best_placement.iter_mut().enumerate() {
                        *slot = self
                            .state
                            .host_of(GuestId::from_index(i))
                            .expect("complete");
                    }
                }
            } else {
                self.rejected += 1;
            }
        }
    }
}

/// Parallel-tempering mapper (`--mapper pt`).
#[derive(Clone, Copy, Debug, Default)]
pub struct ParallelTempering {
    /// Configuration; the default matches SA's 20k-proposal budget.
    pub config: TemperingConfig,
}

impl Mapper for ParallelTempering {
    fn name(&self) -> &str {
        "PT"
    }

    fn map(
        &self,
        phys: &PhysicalTopology,
        venv: &VirtualEnvironment,
        rng: &mut dyn RngCore,
    ) -> Result<MapOutcome, MapError> {
        self.map_with_cache(phys, venv, rng, &mut MapCache::new())
    }

    fn map_with_cache(
        &self,
        phys: &PhysicalTopology,
        venv: &VirtualEnvironment,
        rng: &mut dyn RngCore,
        cache: &mut MapCache,
    ) -> Result<MapOutcome, MapError> {
        let cfg = &self.config;
        assert!(cfg.replicas >= 1, "at least one replica required");
        let start = Instant::now();
        let links = links_by_descending_bw(venv);
        cache.trace.emit(|| TraceEvent::MapStart {
            mapper: "PT".into(),
            guests: venv.guest_count() as u64,
            links: venv.link_count() as u64,
        });
        // One draw from the caller's RNG keys the entire run: replica
        // proposal streams and the swap stream all derive from it, so the
        // mapper remains a pure function of (phys, venv, seed).
        let master_seed = rng.next_u64();
        let hosts: Vec<NodeId> = phys.hosts().to_vec();
        let guest_count = venv.guest_count();

        // --- Seed placement (shared by every replica when hosting-seeded).
        let t_place = Instant::now();
        cache.trace.emit(|| TraceEvent::PhaseStart {
            phase: Phase::Hosting,
        });
        let mut hosting_counters = PhaseCounters::default();
        let seed_placement: Option<Vec<NodeId>> = if cfg.seed_with_hosting {
            let mut state = PlacementState::new(phys, venv);
            let h = match hosting_stage(&mut state, &links) {
                Ok(h) => h,
                Err(e) => {
                    // Close the open phase even on failure: trace
                    // consumers rely on bracketed PhaseStart/PhaseEnd.
                    cache.trace.emit(|| TraceEvent::PhaseEnd {
                        phase: Phase::Hosting,
                        elapsed_us: crate::hmn::elapsed_us(t_place),
                        counters: PhaseCounters::default(),
                    });
                    cache.trace.emit(|| TraceEvent::MapEnd {
                        ok: false,
                        objective: None,
                        elapsed_us: crate::hmn::elapsed_us(start),
                    });
                    return Err(e);
                }
            };
            hosting_counters.colocation_hits = h.colocation_hits as u64;
            hosting_counters.first_fit_fallbacks = h.first_fit_fallbacks as u64;
            migration_stage(&mut state);
            Some(state.into_placement())
        } else {
            None
        };
        cache.trace.emit(|| TraceEvent::PhaseEnd {
            phase: Phase::Hosting,
            elapsed_us: crate::hmn::elapsed_us(t_place),
            counters: hosting_counters,
        });

        // --- Build the ladder.
        let bw_scale = {
            let total_bw: f64 = venv.link_ids().map(|l| venv.link(l).bw.value()).sum();
            if total_bw > 0.0 {
                total_bw / phys.host_count() as f64
            } else {
                0.0
            }
        };
        let bw_enabled = cfg.bandwidth_weight != 0.0 && bw_scale != 0.0;
        let mut replicas: Vec<Replica<'_>> = Vec::with_capacity(cfg.replicas);
        for k in 0..cfg.replicas {
            let mut state = PlacementState::new(phys, venv);
            let mut replica_rng = SmallRng::seed_from_u64(
                master_seed ^ (k as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            match &seed_placement {
                Some(placement) => {
                    for (i, &h) in placement.iter().enumerate() {
                        state
                            .assign(GuestId::from_index(i), h)
                            .expect("hosting placement is feasible");
                    }
                }
                None => {
                    // Independent random feasible start per replica.
                    let mut fitting: Vec<NodeId> = Vec::with_capacity(hosts.len());
                    for g in venv.guest_ids() {
                        fitting.clear();
                        fitting.extend(hosts.iter().copied().filter(|&h| state.fits(g, h)));
                        if fitting.is_empty() {
                            cache.trace.emit(|| TraceEvent::MapEnd {
                                ok: false,
                                objective: None,
                                elapsed_us: crate::hmn::elapsed_us(start),
                            });
                            return Err(MapError::HostingFailed { guest: g });
                        }
                        let pick = fitting[replica_rng.gen_range(0..fitting.len())];
                        state.assign(g, pick).expect("candidate verified");
                    }
                }
            }
            let bw_inter = if bw_enabled {
                state.inter_host_bandwidth().value()
            } else {
                0.0
            };
            let energy = if bw_enabled {
                state.objective() + cfg.bandwidth_weight * bw_inter / bw_scale
            } else {
                state.objective()
            };
            // Geometric ladder from cold (rung 0) to hot, anchored on this
            // replica's own initial energy scale.
            let t_min = (energy * cfg.min_temperature_factor).max(1e-6);
            let t_max = (energy * cfg.max_temperature_factor).max(t_min * (1.0 + 1e-9));
            let frac = if cfg.replicas == 1 {
                0.0
            } else {
                k as f64 / (cfg.replicas - 1) as f64
            };
            let temperature = t_min * (t_max / t_min).powf(frac);
            let best_placement = venv
                .guest_ids()
                .map(|g| state.host_of(g).expect("complete"))
                .collect();
            replicas.push(Replica {
                state,
                rng: replica_rng,
                temperature,
                energy,
                bw_inter,
                best_energy: energy,
                best_placement,
                accepted: 0,
                rejected: 0,
                proposals: 0,
            });
        }

        // --- Temper.
        let t_anneal = Instant::now();
        cache.trace.emit(|| TraceEvent::PhaseStart {
            phase: Phase::Migration,
        });
        let runner = ParallelRunner::new(cfg.threads.min(cfg.replicas.max(1)));
        let mut swap_rng = SmallRng::seed_from_u64(master_seed.wrapping_add(0xA076_1D64_78BD_642F));
        let mut replica_exchanges = 0usize;
        let mut exchange_accepts = 0usize;
        let delta_evals_before: u64 = replicas.iter().map(|r| r.state.delta_evaluations()).sum();
        let full_evals_before: u64 = replicas.iter().map(|r| r.state.full_evaluations()).sum();
        for round in 0..cfg.rounds {
            replicas = runner.run(replicas, |mut r, _cache| {
                r.run_round(
                    &hosts,
                    cfg.iterations_per_round,
                    bw_enabled,
                    cfg.bandwidth_weight,
                    bw_scale,
                );
                r
            });
            // Exchange temperatures between adjacent rungs, alternating
            // even/odd pairing per round so every neighbor pair is tried.
            // The swap RNG is consumed strictly sequentially here on the
            // coordinator — one draw per attempt, accepted or not — so the
            // decision stream never depends on worker scheduling.
            let mut k = round % 2;
            while k + 1 < replicas.len() {
                replica_exchanges += 1;
                let u = swap_rng.gen::<f64>();
                let (ti, tj) = (replicas[k].temperature, replicas[k + 1].temperature);
                let (ei, ej) = (replicas[k].energy, replicas[k + 1].energy);
                let log_accept = (1.0 / ti - 1.0 / tj) * (ei - ej);
                if log_accept >= 0.0 || u < log_accept.exp() {
                    exchange_accepts += 1;
                    replicas[k].temperature = tj;
                    replicas[k + 1].temperature = ti;
                }
                k += 2;
            }
        }
        let delta_evaluations: u64 = replicas
            .iter()
            .map(|r| r.state.delta_evaluations())
            .sum::<u64>()
            - delta_evals_before;
        let full_evaluations: u64 = replicas
            .iter()
            .map(|r| r.state.full_evaluations())
            .sum::<u64>()
            - full_evals_before;
        let accepted: usize = replicas.iter().map(|r| r.accepted).sum();
        let rejected: usize = replicas.iter().map(|r| r.rejected).sum();
        let proposals: usize = replicas.iter().map(|r| r.proposals).sum();
        cache.trace.emit(|| TraceEvent::PhaseEnd {
            phase: Phase::Migration,
            elapsed_us: crate::hmn::elapsed_us(t_anneal),
            counters: PhaseCounters {
                moves_accepted: accepted as u64,
                moves_rejected: rejected as u64,
                proposals_evaluated: proposals as u64,
                delta_evaluations,
                full_evaluations,
                replica_exchanges: replica_exchanges as u64,
                exchange_accepts: exchange_accepts as u64,
                ..Default::default()
            },
        });
        let placement_time = t_place.elapsed();

        // --- Route the global best. Ties break toward the coldest-built
        // (lowest-index) replica for determinism.
        let best = replicas
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.best_energy.total_cmp(&b.best_energy))
            .map(|(i, _)| i)
            .expect("at least one replica");
        let best_placement = std::mem::take(&mut replicas[best].best_placement);
        drop(replicas);
        let mut state = PlacementState::new(phys, venv);
        for (i, &h) in best_placement.iter().enumerate() {
            state
                .assign(GuestId::from_index(i), h)
                .expect("best placement was feasible when recorded");
        }
        debug_assert_eq!(state.assigned_count(), guest_count);

        let t_route = Instant::now();
        let route_reuses_before = cache.scratch.reuses();
        cache.trace.emit(|| TraceEvent::PhaseStart {
            phase: Phase::Networking,
        });
        let (routes, net) = match networking_stage_with(&mut state, &links, &cfg.astar, cache) {
            Ok(r) => r,
            Err(e) => {
                cache.trace.emit(|| TraceEvent::PhaseEnd {
                    phase: Phase::Networking,
                    elapsed_us: crate::hmn::elapsed_us(t_route),
                    counters: PhaseCounters::default(),
                });
                cache.trace.emit(|| TraceEvent::MapEnd {
                    ok: false,
                    objective: None,
                    elapsed_us: crate::hmn::elapsed_us(start),
                });
                return Err(e);
            }
        };
        cache.trace.emit(|| TraceEvent::PhaseEnd {
            phase: Phase::Networking,
            elapsed_us: crate::hmn::elapsed_us(t_route),
            counters: PhaseCounters {
                astar_expansions: net.search.expanded as u64,
                astar_pushed: net.search.pushed as u64,
                dijkstra_runs: net.dijkstra_runs as u64,
                cache_hits: net.ar_cache_hits as u64,
                ..Default::default()
            },
        });
        let stats = MapStats {
            attempts: 1,
            migrations: accepted,
            migrations_rejected: rejected,
            routed_links: net.routed_links,
            intra_host_links: net.intra_host_links,
            astar_expansions: net.search.expanded,
            dijkstra_runs: net.dijkstra_runs,
            ar_cache_hits: net.ar_cache_hits,
            scratch_reuses: cache.scratch.reuses() - route_reuses_before,
            proposals_evaluated: proposals,
            delta_evaluations: delta_evaluations as usize,
            full_evaluations: full_evaluations as usize,
            replica_exchanges,
            exchange_accepts,
            placement_time,
            networking_time: t_route.elapsed(),
            total_time: start.elapsed(),
            ..Default::default()
        };
        let mapping = Mapping::new(state.into_placement(), routes);
        let outcome = MapOutcome::new(phys, venv, mapping, stats);
        cache.trace.emit(|| TraceEvent::MapEnd {
            ok: true,
            objective: Some(outcome.objective),
            elapsed_us: crate::hmn::elapsed_us(start),
        });
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Hmn;
    use emumap_graph::generators;
    use emumap_model::{
        validate_mapping, GuestSpec, HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips, StorGb,
        VLinkSpec, VmmOverhead,
    };

    fn phys() -> PhysicalTopology {
        PhysicalTopology::from_shape(
            &generators::torus2d(3, 4),
            std::iter::repeat(HostSpec::new(
                Mips(2000.0),
                MemMb::from_gb(2),
                StorGb(2000.0),
            )),
            LinkSpec::new(Kbps::from_gbps(1.0), Millis(5.0)),
            VmmOverhead::NONE,
        )
    }

    fn venv(n: usize, seed: u64) -> VirtualEnvironment {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut v = VirtualEnvironment::new();
        let ids: Vec<_> = (0..n)
            .map(|_| {
                v.add_guest(GuestSpec::new(
                    Mips(rng.gen_range(50.0..=100.0)),
                    MemMb(rng.gen_range(128..=256)),
                    StorGb(rng.gen_range(100.0..=200.0)),
                ))
            })
            .collect();
        for w in ids.windows(2) {
            v.add_link(
                w[0],
                w[1],
                VLinkSpec::new(Kbps(rng.gen_range(500.0..=1000.0)), Millis(45.0)),
            );
        }
        v
    }

    fn small_config() -> TemperingConfig {
        TemperingConfig {
            replicas: 4,
            rounds: 10,
            iterations_per_round: 50,
            threads: 2,
            ..Default::default()
        }
    }

    #[test]
    fn tempering_produces_valid_mappings() {
        let p = phys();
        let v = venv(30, 1);
        let out = ParallelTempering {
            config: small_config(),
        }
        .map(&p, &v, &mut SmallRng::seed_from_u64(7))
        .unwrap();
        assert_eq!(validate_mapping(&p, &v, &out.mapping), Ok(()));
        assert!(out.stats.replica_exchanges > 0);
        assert!(out.stats.exchange_accepts <= out.stats.replica_exchanges);
    }

    #[test]
    fn tempering_is_bit_identical_across_thread_counts() {
        let p = phys();
        let v = venv(24, 2);
        let run = |threads: usize| {
            let config = TemperingConfig {
                threads,
                ..small_config()
            };
            ParallelTempering { config }
                .map(&p, &v, &mut SmallRng::seed_from_u64(3))
                .unwrap()
        };
        let one = run(1);
        for threads in [4, 8] {
            let multi = run(threads);
            assert_eq!(one.mapping, multi.mapping, "{threads} threads");
            assert_eq!(
                one.objective.to_bits(),
                multi.objective.to_bits(),
                "{threads} threads"
            );
            assert_eq!(one.stats.replica_exchanges, multi.stats.replica_exchanges);
            assert_eq!(one.stats.exchange_accepts, multi.stats.exchange_accepts);
            assert_eq!(
                one.stats.proposals_evaluated,
                multi.stats.proposals_evaluated
            );
        }
    }

    #[test]
    fn tempering_from_hosting_is_competitive_with_hmn() {
        let p = phys();
        let v = venv(24, 6);
        let hmn = Hmn::new()
            .map(&p, &v, &mut SmallRng::seed_from_u64(1))
            .unwrap();
        let pt = ParallelTempering {
            config: TemperingConfig {
                bandwidth_weight: 0.0,
                ..small_config()
            },
        }
        .map(&p, &v, &mut SmallRng::seed_from_u64(1))
        .unwrap();
        // Every replica starts from HMN's own fixpoint and tracks its
        // best, so with a pure Eq. 10 energy PT can never end worse.
        assert!(
            pt.objective <= hmn.objective + 1e-9,
            "PT {} vs HMN {}",
            pt.objective,
            hmn.objective
        );
    }

    #[test]
    fn accumulator_energy_matches_full_recompute_after_exchanges() {
        // The per-replica running energy is maintained via the O(1)
        // accumulator and O(degree) bandwidth deltas across thousands of
        // proposals and dozens of temperature exchanges; verify against
        // a from-scratch recompute of both terms on the final states.
        let p = phys();
        let v = venv(30, 4);
        let cfg = TemperingConfig {
            replicas: 4,
            rounds: 20,
            iterations_per_round: 100,
            threads: 2,
            ..Default::default()
        };
        // Re-run the ladder by hand (the mapper's internals are private)
        // with the same machinery the mapper uses.
        let links = links_by_descending_bw(&v);
        let mut state = PlacementState::new(&p, &v);
        hosting_stage(&mut state, &links).unwrap();
        migration_stage(&mut state);
        let seed_placement = state.into_placement();
        let total_bw: f64 = v.link_ids().map(|l| v.link(l).bw.value()).sum();
        let bw_scale = total_bw / p.host_count() as f64;
        let mut replicas: Vec<Replica<'_>> = (0..cfg.replicas)
            .map(|k| {
                let mut state = PlacementState::new(&p, &v);
                for (i, &h) in seed_placement.iter().enumerate() {
                    state.assign(GuestId::from_index(i), h).unwrap();
                }
                let bw_inter = state.inter_host_bandwidth().value();
                let energy = state.objective() + cfg.bandwidth_weight * bw_inter / bw_scale;
                Replica {
                    state,
                    rng: SmallRng::seed_from_u64(99 + k as u64),
                    temperature: 0.05 * energy.max(1.0) * (k + 1) as f64,
                    energy,
                    bw_inter,
                    best_energy: energy,
                    best_placement: seed_placement.clone(),
                    accepted: 0,
                    rejected: 0,
                    proposals: 0,
                }
            })
            .collect();
        let hosts: Vec<NodeId> = p.hosts().to_vec();
        let mut swap_rng = SmallRng::seed_from_u64(1234);
        for round in 0..cfg.rounds {
            for r in replicas.iter_mut() {
                r.run_round(
                    &hosts,
                    cfg.iterations_per_round,
                    true,
                    cfg.bandwidth_weight,
                    bw_scale,
                );
            }
            let mut k = round % 2;
            while k + 1 < replicas.len() {
                let u = swap_rng.gen::<f64>();
                let (ti, tj) = (replicas[k].temperature, replicas[k + 1].temperature);
                let (ei, ej) = (replicas[k].energy, replicas[k + 1].energy);
                let log_accept = (1.0 / ti - 1.0 / tj) * (ei - ej);
                if log_accept >= 0.0 || u < log_accept.exp() {
                    replicas[k].temperature = tj;
                    replicas[k + 1].temperature = ti;
                }
                k += 2;
            }
        }
        for (k, r) in replicas.iter().enumerate() {
            assert!(r.accepted > 0, "replica {k} accepted no proposals");
            // Objective term: accumulator vs population stddev from the
            // residual columns.
            let residuals = r.state.residual().host_proc_residuals(&p);
            let mean = residuals.iter().sum::<f64>() / residuals.len() as f64;
            let var =
                residuals.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / residuals.len() as f64;
            let objective = var.sqrt();
            // Bandwidth term: full rescan vs the running delta total.
            let bw_full = r.state.inter_host_bandwidth().value();
            let energy_full = objective + cfg.bandwidth_weight * bw_full / bw_scale;
            assert!(
                (r.state.objective() - objective).abs() < 1e-6,
                "replica {k}: accumulator {} vs full {}",
                r.state.objective(),
                objective
            );
            assert!(
                (r.bw_inter - bw_full).abs() < 1e-6,
                "replica {k}: running bw {} vs full {}",
                r.bw_inter,
                bw_full
            );
            assert!(
                (r.energy - energy_full).abs() < 1e-6,
                "replica {k}: running energy {} vs full {}",
                r.energy,
                energy_full
            );
        }
    }

    #[test]
    fn single_replica_is_fine() {
        let p = phys();
        let v = venv(12, 5);
        let out = ParallelTempering {
            config: TemperingConfig {
                replicas: 1,
                rounds: 5,
                iterations_per_round: 100,
                threads: 1,
                ..Default::default()
            },
        }
        .map(&p, &v, &mut SmallRng::seed_from_u64(2))
        .unwrap();
        assert_eq!(validate_mapping(&p, &v, &out.mapping), Ok(()));
        assert_eq!(out.stats.replica_exchanges, 0);
    }

    #[test]
    fn empty_venv_is_fine() {
        let p = phys();
        let v = VirtualEnvironment::new();
        let out = ParallelTempering::default()
            .map(&p, &v, &mut SmallRng::seed_from_u64(1))
            .unwrap();
        assert_eq!(out.mapping.guest_count(), 0);
    }

    #[test]
    fn random_start_varies_per_replica_but_is_reproducible() {
        let p = phys();
        let v = venv(20, 7);
        let config = TemperingConfig {
            seed_with_hosting: false,
            ..small_config()
        };
        let a = ParallelTempering { config }
            .map(&p, &v, &mut SmallRng::seed_from_u64(9))
            .unwrap();
        let b = ParallelTempering { config }
            .map(&p, &v, &mut SmallRng::seed_from_u64(9))
            .unwrap();
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
    }
}
