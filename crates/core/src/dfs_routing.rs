//! The depth-first path search used by the evaluation's baselines
//! (§5: Random "applies a depth-first search algorithm to find a path",
//! and Hosting+Search routes the same way).
//!
//! ### Faithfulness notes
//!
//! The paper never specifies its DFS beyond "depth-first search", but its
//! published failure pattern constrains it tightly:
//!
//! * R fails where RA succeeds (torus, ≥ 7.5:1 and all low-level rows), so
//!   the DFS must be **non-exhaustive with respect to latency**: it can
//!   miss feasible paths (otherwise it would match A\*Prune's success
//!   rate, and the paper's conclusion that "the main responsible for the
//!   success ... is the A\*Prune algorithm" would be false).
//! * R *succeeds* on the torus at 2.5:1–5:1 and always on the switched
//!   cluster, so the DFS must find latency-feasible paths *most* of the
//!   time when the network is uncongested — a uniformly random walk
//!   would not (its paths on a 40-node torus average far beyond the 6–12
//!   hops the 30–60 ms bounds allow).
//!
//! The implementation therefore walks depth-first preferring neighbors
//! closer to the destination (distance taken from a hop-count BFS, the
//! cheap analogue of A\*Prune's `ar[]` table), with random tie-breaking,
//! and **wanders** — explores in random order instead — at each node with
//! probability [`WANDER_PROBABILITY`]. Bandwidth is respected during the
//! search (a saturated edge is a dead end and the walk backtracks);
//! the latency bound is only checked once a path is complete, and a
//! violation fails the attempt outright. The wander probability is
//! calibrated so the per-link success probability on an uncongested torus
//! is ≈ 0.95, which reproduces the paper's R/HS failure thresholds (see
//! EXPERIMENTS.md).

use emumap_graph::algo::dijkstra;
use emumap_graph::{CsrAdjacency, EdgeId, NodeId};
use emumap_model::{Kbps, Millis, PhysicalTopology, ResidualState};
use rand::seq::SliceRandom;
use rand::{Rng, RngCore};

/// Probability, per expanded node, that the DFS explores neighbors in
/// random order instead of closest-to-destination-first.
pub const WANDER_PROBABILITY: f64 = 0.2;

/// Hop distances from every node to `destination` (BFS via unit-cost
/// Dijkstra). Baseline routers reuse this per destination the way the
/// Networking stage caches `ar[]`.
pub fn hop_distances(phys: &PhysicalTopology, destination: NodeId) -> Vec<f64> {
    dijkstra(phys.graph(), destination, |_, _| 1.0)
        .distances()
        .to_vec()
}

/// One level of the DFS stack: a node plus its (shuffled, possibly
/// distance-sorted) neighbor list and a cursor into it.
#[derive(Debug)]
struct Frame {
    node: NodeId,
    neighbors: Vec<(NodeId, EdgeId)>,
    next: usize,
}

/// Reusable buffers for [`naive_dfs_route_with`]: the visited bitmap, the
/// frame stack, and a pool of recycled neighbor lists.
///
/// The per-call cost of the baseline router is dominated by one neighbor
/// `Vec` allocation per expanded node; the pool hands frames their list
/// back from earlier searches instead. Purely an allocation cache — the
/// search consumes the RNG and visits nodes in exactly the same order as
/// the scratch-free wrapper, so results are bit-identical.
#[derive(Debug, Default)]
pub struct DfsScratch {
    on_path: Vec<bool>,
    frames: Vec<Frame>,
    spare: Vec<Vec<(NodeId, EdgeId)>>,
    warm: bool,
    reuses: usize,
    backtracks: usize,
}

impl DfsScratch {
    /// Fresh, cold scratch.
    pub fn new() -> Self {
        DfsScratch::default()
    }

    /// Searches that ran on already-warm buffers (every use after the
    /// first). Surfaced in `MapStats::scratch_reuses`.
    pub fn reuses(&self) -> usize {
        self.reuses
    }

    /// Cumulative backtrack steps (frames popped with no remaining
    /// neighbor) across every search on this scratch. Surfaced in
    /// `MapStats::dfs_backtracks` and the trace's Networking counters.
    pub fn backtracks(&self) -> usize {
        self.backtracks
    }

    /// Resets the visited bitmap for an `n`-node graph and recycles any
    /// leftover frames into the spare pool.
    fn begin(&mut self, n: usize) {
        if self.warm {
            self.reuses += 1;
        }
        self.warm = true;
        self.on_path.clear();
        self.on_path.resize(n, false);
        for mut f in self.frames.drain(..) {
            f.neighbors.clear();
            self.spare.push(f.neighbors);
        }
    }

    /// An empty neighbor buffer, reusing a pooled one when available.
    fn neighbor_buf(&mut self) -> Vec<(NodeId, EdgeId)> {
        self.spare.pop().unwrap_or_default()
    }
}

/// Finds a simple path from `origin` to `destination` whose edges all have
/// residual bandwidth `>= demand`, walking depth-first with the bias
/// described in the module docs. The completed path is accepted only if
/// its total latency is within `latency_bound`; otherwise the attempt
/// fails (`None`) with **no** latency backtracking — the baseline's
/// defining weakness versus A\*Prune.
///
/// `hops_to_dest` must come from [`hop_distances`] for this destination.
///
/// Convenience wrapper over [`naive_dfs_route_with`] allocating a fresh
/// [`DfsScratch`] per call.
#[allow(clippy::too_many_arguments)] // mirrors the astar_prune signature
pub fn naive_dfs_route(
    phys: &PhysicalTopology,
    residual: &ResidualState,
    origin: NodeId,
    destination: NodeId,
    demand: Kbps,
    latency_bound: Millis,
    hops_to_dest: &[f64],
    rng: &mut dyn RngCore,
) -> Option<Vec<EdgeId>> {
    naive_dfs_route_with(
        phys,
        residual,
        origin,
        destination,
        demand,
        latency_bound,
        hops_to_dest,
        rng,
        &mut DfsScratch::new(),
    )
}

/// [`naive_dfs_route`] with caller-owned scratch buffers — the
/// allocation-free entry point. Bit-identical results (and RNG
/// consumption) for any scratch history.
#[allow(clippy::too_many_arguments)] // mirrors the astar_prune signature
pub fn naive_dfs_route_with(
    phys: &PhysicalTopology,
    residual: &ResidualState,
    origin: NodeId,
    destination: NodeId,
    demand: Kbps,
    latency_bound: Millis,
    hops_to_dest: &[f64],
    rng: &mut dyn RngCore,
    scratch: &mut DfsScratch,
) -> Option<Vec<EdgeId>> {
    let graph = phys.graph();
    dfs_route_impl(
        phys,
        residual,
        origin,
        destination,
        demand,
        latency_bound,
        hops_to_dest,
        rng,
        scratch,
        |buf, node| buf.extend(graph.neighbors(node).map(|nb| (nb.node, nb.edge))),
    )
}

/// [`naive_dfs_route_with`] iterating neighbors through a pre-built
/// [`CsrAdjacency`] snapshot of the physical graph (e.g. the one cached in
/// `ArTables`). The snapshot preserves `Graph::neighbors` order, so the
/// RNG stream and the returned path are bit-identical to the edge-list
/// entry points — both stay public so the equivalence is property-testable.
#[allow(clippy::too_many_arguments)] // mirrors the astar_prune signature
pub fn naive_dfs_route_csr(
    phys: &PhysicalTopology,
    csr: &CsrAdjacency,
    residual: &ResidualState,
    origin: NodeId,
    destination: NodeId,
    demand: Kbps,
    latency_bound: Millis,
    hops_to_dest: &[f64],
    rng: &mut dyn RngCore,
    scratch: &mut DfsScratch,
) -> Option<Vec<EdgeId>> {
    debug_assert_eq!(csr.node_count(), phys.graph().node_count());
    dfs_route_impl(
        phys,
        residual,
        origin,
        destination,
        demand,
        latency_bound,
        hops_to_dest,
        rng,
        scratch,
        |buf, node| buf.extend(csr.neighbors(node).iter().map(|nb| (nb.node, nb.edge))),
    )
}

/// Shared walk over a pluggable raw-neighbor source. `fill_raw` appends
/// `(neighbor, edge)` pairs for a node in the graph's canonical neighbor
/// order; shuffling and distance-sorting happen here so every source
/// consumes the RNG identically.
#[allow(clippy::too_many_arguments)]
fn dfs_route_impl(
    phys: &PhysicalTopology,
    residual: &ResidualState,
    origin: NodeId,
    destination: NodeId,
    demand: Kbps,
    latency_bound: Millis,
    hops_to_dest: &[f64],
    rng: &mut dyn RngCore,
    scratch: &mut DfsScratch,
    fill_raw: impl Fn(&mut Vec<(NodeId, EdgeId)>, NodeId),
) -> Option<Vec<EdgeId>> {
    if origin == destination {
        return Some(Vec::new());
    }
    let graph = phys.graph();
    let want = demand.value();
    scratch.begin(graph.node_count());

    let fill_neighbors = |buf: &mut Vec<(NodeId, EdgeId)>, node: NodeId, rng: &mut dyn RngCore| {
        buf.clear();
        fill_raw(buf, node);
        buf.shuffle(rng); // random tie-breaking baseline order
        if rng.gen::<f64>() >= WANDER_PROBABILITY {
            // Mostly: head toward the destination (stable sort keeps the
            // shuffled order within equal distances).
            buf.sort_by(|a, b| hops_to_dest[a.0.index()].total_cmp(&hops_to_dest[b.0.index()]));
        }
    };

    scratch.on_path[origin.index()] = true;
    let mut edges: Vec<EdgeId> = Vec::new();
    let mut root = scratch.neighbor_buf();
    fill_neighbors(&mut root, origin, rng);
    scratch.frames.push(Frame {
        node: origin,
        neighbors: root,
        next: 0,
    });

    while let Some(frame) = scratch.frames.last_mut() {
        let mut pushed: Option<NodeId> = None;
        let mut advanced = false;
        while frame.next < frame.neighbors.len() {
            let (node, edge) = frame.neighbors[frame.next];
            frame.next += 1;
            if scratch.on_path[node.index()] {
                continue;
            }
            if residual.bw(edge).value() < want {
                continue;
            }
            edges.push(edge);
            if node == destination {
                // First complete path: accept or reject on latency, no
                // backtracking.
                let total: f64 = edges.iter().map(|&e| phys.link(e).lat.value()).sum();
                if total <= latency_bound.value() + 1e-9 {
                    return Some(edges);
                }
                return None;
            }
            pushed = Some(node);
            advanced = true;
            break;
        }
        if advanced {
            let node = pushed.expect("advanced implies a pushed node");
            scratch.on_path[node.index()] = true;
            let mut buf = scratch.neighbor_buf();
            fill_neighbors(&mut buf, node, rng);
            scratch.frames.push(Frame {
                node,
                neighbors: buf,
                next: 0,
            });
        } else {
            let mut done = scratch.frames.pop().expect("frame exists");
            scratch.on_path[done.node.index()] = false;
            edges.pop();
            done.neighbors.clear();
            scratch.spare.push(done.neighbors);
            scratch.backtracks += 1;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use emumap_graph::generators;
    use emumap_model::{HostSpec, LinkSpec, MemMb, Mips, StorGb, VmmOverhead};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn phys(shape: &emumap_graph::generators::Topology, bw: f64) -> PhysicalTopology {
        PhysicalTopology::from_shape(
            shape,
            std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(1024), StorGb(100.0))),
            LinkSpec::new(Kbps(bw), Millis(5.0)),
            VmmOverhead::NONE,
        )
    }

    fn route(
        p: &PhysicalTopology,
        r: &ResidualState,
        from: usize,
        to: usize,
        demand: f64,
        bound: f64,
        seed: u64,
    ) -> Option<Vec<EdgeId>> {
        let dst = p.hosts()[to];
        let hops = hop_distances(p, dst);
        let mut rng = SmallRng::seed_from_u64(seed);
        naive_dfs_route(
            p,
            r,
            p.hosts()[from],
            dst,
            Kbps(demand),
            Millis(bound),
            &hops,
            &mut rng,
        )
    }

    #[test]
    fn reused_scratch_matches_fresh_search() {
        // The scratch is an allocation cache only: identical RNG
        // consumption and identical paths whatever its history.
        let p = phys(&generators::torus2d(4, 4), 1000.0);
        let r = ResidualState::new(&p);
        let mut scratch = DfsScratch::new();
        for seed in 0..40u64 {
            let from = (seed as usize * 5) % 16;
            let to = (seed as usize * 11 + 3) % 16;
            let dst = p.hosts()[to];
            let hops = hop_distances(&p, dst);
            let mut rng_a = SmallRng::seed_from_u64(seed);
            let mut rng_b = SmallRng::seed_from_u64(seed);
            let fresh = naive_dfs_route(
                &p,
                &r,
                p.hosts()[from],
                dst,
                Kbps(10.0),
                Millis(60.0),
                &hops,
                &mut rng_a,
            );
            let reused = naive_dfs_route_with(
                &p,
                &r,
                p.hosts()[from],
                dst,
                Kbps(10.0),
                Millis(60.0),
                &hops,
                &mut rng_b,
                &mut scratch,
            );
            assert_eq!(fresh, reused, "seed {seed}");
            assert_eq!(
                rng_a.gen::<u64>(),
                rng_b.gen::<u64>(),
                "seed {seed}: RNG streams diverged"
            );
        }
        assert!(scratch.reuses() > 0);
    }

    #[test]
    fn csr_variant_matches_edge_list_variant() {
        let p = phys(&generators::torus2d(4, 4), 1000.0);
        let r = ResidualState::new(&p);
        let csr = p.graph().to_csr();
        let mut scratch_a = DfsScratch::new();
        let mut scratch_b = DfsScratch::new();
        for seed in 0..40u64 {
            let from = (seed as usize * 5) % 16;
            let to = (seed as usize * 11 + 3) % 16;
            let dst = p.hosts()[to];
            let hops = hop_distances(&p, dst);
            let mut rng_a = SmallRng::seed_from_u64(seed);
            let mut rng_b = SmallRng::seed_from_u64(seed);
            let via_list = naive_dfs_route_with(
                &p,
                &r,
                p.hosts()[from],
                dst,
                Kbps(10.0),
                Millis(60.0),
                &hops,
                &mut rng_a,
                &mut scratch_a,
            );
            let via_csr = naive_dfs_route_csr(
                &p,
                &csr,
                &r,
                p.hosts()[from],
                dst,
                Kbps(10.0),
                Millis(60.0),
                &hops,
                &mut rng_b,
                &mut scratch_b,
            );
            assert_eq!(via_list, via_csr, "seed {seed}");
            assert_eq!(
                rng_a.gen::<u64>(),
                rng_b.gen::<u64>(),
                "seed {seed}: RNG streams diverged"
            );
        }
    }

    #[test]
    fn finds_the_unique_path_on_a_line() {
        let p = phys(&generators::line(4), 100.0);
        let r = ResidualState::new(&p);
        let path = route(&p, &r, 0, 3, 10.0, 100.0, 1).unwrap();
        assert_eq!(path.len(), 3);
    }

    #[test]
    fn rejects_when_bandwidth_is_insufficient() {
        let p = phys(&generators::line(2), 5.0);
        let r = ResidualState::new(&p);
        assert!(route(&p, &r, 0, 1, 10.0, 100.0, 1).is_none());
    }

    #[test]
    fn mostly_direct_but_sometimes_wanders() {
        // Ring of 8, adjacent nodes, tight bound (only the 1-hop direct
        // edge fits). The biased DFS should succeed most of the time but
        // not always — the calibrated failure mode of the baselines.
        let p = phys(&generators::ring(8), 100.0);
        let r = ResidualState::new(&p);
        let mut success = 0;
        let trials = 200;
        for seed in 0..trials {
            if route(&p, &r, 0, 1, 10.0, 5.0, seed).is_some() {
                success += 1;
            }
        }
        let rate = success as f64 / trials as f64;
        assert!(
            rate > 0.6,
            "biased DFS should usually go direct (rate {rate})"
        );
        assert!(
            rate < 1.0,
            "wander must occasionally produce long paths (rate {rate})"
        );
    }

    #[test]
    fn torus_per_link_success_rate_is_high_when_uncongested() {
        // The calibration target behind WANDER_PROBABILITY: on the paper's
        // empty 5x8 torus with paper-typical latency bounds, a single link
        // routes successfully ~95% of the time.
        let p = phys(&generators::torus2d(5, 8), 1_000_000.0);
        let r = ResidualState::new(&p);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut success = 0;
        let trials = 400;
        for t in 0..trials {
            let from = (t * 7) % 40;
            let to = (t * 13 + 11) % 40;
            if from == to {
                success += 1;
                continue;
            }
            let bound = 30.0 + 30.0 * rng.gen::<f64>(); // 30-60 ms as in Table 1
            if route(&p, &r, from, to, 100.0, bound, t as u64).is_some() {
                success += 1;
            }
        }
        let rate = success as f64 / trials as f64;
        assert!(
            (0.85..=0.995).contains(&rate),
            "per-link success on empty torus should be ~0.95, got {rate}"
        );
    }

    #[test]
    fn same_node_gives_empty_path() {
        let p = phys(&generators::line(2), 100.0);
        let r = ResidualState::new(&p);
        let path = route(&p, &r, 0, 0, 10.0, 0.0, 1).unwrap();
        assert!(path.is_empty());
    }

    #[test]
    fn backtracks_around_bandwidth_dead_ends() {
        let p = phys(&generators::star(4), 100.0);
        let mut r = ResidualState::new(&p);
        let to3 = p.graph().find_edge(p.hosts()[0], p.hosts()[3]).unwrap();
        r.commit_route(&[to3], Kbps(95.0));
        let path = route(&p, &r, 1, 2, 50.0, 100.0, 9).unwrap();
        assert_eq!(path.len(), 2);
        assert!(!path.contains(&to3));
    }

    #[test]
    fn backtrack_counter_accumulates() {
        // Line 0-1-2 with the 1-2 edge saturated: the walk reaches node 1,
        // exhausts its neighbors, pops it, then pops the root — exactly two
        // backtracks, independent of the RNG.
        let p = phys(&generators::line(3), 100.0);
        let mut r = ResidualState::new(&p);
        let e12 = p.graph().find_edge(p.hosts()[1], p.hosts()[2]).unwrap();
        r.commit_route(&[e12], Kbps(95.0));
        let mut scratch = DfsScratch::new();
        let dst = p.hosts()[2];
        let hops = hop_distances(&p, dst);
        let mut rng = SmallRng::seed_from_u64(7);
        let res = naive_dfs_route_with(
            &p,
            &r,
            p.hosts()[0],
            dst,
            Kbps(50.0),
            Millis(100.0),
            &hops,
            &mut rng,
            &mut scratch,
        );
        assert!(res.is_none());
        assert_eq!(
            scratch.backtracks(),
            2,
            "frame 1 then the root frame popped"
        );
    }

    #[test]
    fn switched_topology_always_routes() {
        // §5.2: on the switched cluster "there is only one possible path"
        // — host-switch-host, 10 ms — so the DFS baseline never fails
        // there, matching R's near-zero switched failure count.
        let p = phys(&generators::switched_cascade(40, 64), 1_000_000.0);
        let r = ResidualState::new(&p);
        for seed in 0..50 {
            let path = route(&p, &r, 0, 39, 100.0, 30.0, seed).unwrap();
            assert_eq!(path.len(), 2);
        }
    }

    #[test]
    fn path_is_simple_on_torus() {
        let p = phys(&generators::torus2d(4, 4), 1000.0);
        let r = ResidualState::new(&p);
        for seed in 0..20 {
            if let Some(path) = route(&p, &r, 0, 10, 1.0, 1e9, seed) {
                let mut cur = p.hosts()[0];
                let mut seen = vec![cur];
                for e in path {
                    cur = p.graph().edge_ref(e).other(cur);
                    assert!(!seen.contains(&cur), "seed {seed}: path revisits {cur}");
                    seen.push(cur);
                }
                assert_eq!(cur, p.hosts()[10]);
            }
        }
    }
}
