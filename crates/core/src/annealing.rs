//! Simulated-annealing placement — a heavier §6-style "different
//! heuristic" for the scenarios where HMN's greedy pipeline stalls.
//!
//! The annealer searches placement space directly: starting from a random
//! (or hosting-seeded) feasible placement, it proposes single-guest moves
//! and guest swaps, accepting worse placements with the usual Metropolis
//! probability under a geometric cooling schedule. The energy combines the
//! paper's Eq. 10 objective with a soft penalty for *inter-host bandwidth*
//! (the quantity Hosting's affinity minimizes), so the annealer optimizes
//! both of HMN's goals at once. Routing is still A\*Prune — placement
//! search and routing are orthogonal.
//!
//! Determinism: the entire schedule is driven by the caller's seeded RNG.

use crate::astar_prune::AStarPruneConfig;
use crate::cache::MapCache;
use crate::error::MapError;
use crate::hosting::{hosting_stage, links_by_descending_bw};
use crate::mapper::{MapOutcome, MapStats, Mapper};
use crate::migration::migration_stage;
use crate::networking::networking_stage_with;
use crate::state::PlacementState;
use emumap_graph::NodeId;
use emumap_model::{GuestId, Mapping, PhysicalTopology, VirtualEnvironment};
use emumap_trace::{Phase, PhaseCounters, TraceEvent};
use rand::{Rng, RngCore};
use std::time::Instant;

/// Annealer configuration.
#[derive(Clone, Copy, Debug)]
pub struct AnnealingConfig {
    /// Proposals evaluated in total.
    pub iterations: usize,
    /// Initial temperature as a fraction of the initial energy (adaptive —
    /// instance scales vary over orders of magnitude).
    pub initial_temperature_factor: f64,
    /// Geometric cooling rate per iteration (e.g. 0.999).
    pub cooling: f64,
    /// Weight of the inter-host bandwidth term, as a fraction of its
    /// natural scale relative to the objective (0 disables it).
    pub bandwidth_weight: f64,
    /// Seed the search from HMN's Hosting+Migration fixpoint instead of a
    /// random placement. Because the annealer tracks the best placement
    /// visited (including the start), this guarantees the result is never
    /// worse than HMN's own placement.
    pub seed_with_hosting: bool,
    /// A\*Prune configuration for the final routing pass.
    pub astar: AStarPruneConfig,
}

impl Default for AnnealingConfig {
    fn default() -> Self {
        AnnealingConfig {
            iterations: 20_000,
            initial_temperature_factor: 0.3,
            cooling: 0.9995,
            bandwidth_weight: 0.5,
            seed_with_hosting: true,
            astar: AStarPruneConfig::default(),
        }
    }
}

/// Simulated-annealing mapper.
#[derive(Clone, Copy, Debug, Default)]
pub struct Annealing {
    /// Configuration; the default anneals 20k proposals from a
    /// hosting-seeded start.
    pub config: AnnealingConfig,
}

impl Mapper for Annealing {
    fn name(&self) -> &str {
        "SA"
    }

    fn map(
        &self,
        phys: &PhysicalTopology,
        venv: &VirtualEnvironment,
        rng: &mut dyn RngCore,
    ) -> Result<MapOutcome, MapError> {
        self.map_with_cache(phys, venv, rng, &mut MapCache::new())
    }

    fn map_with_cache(
        &self,
        phys: &PhysicalTopology,
        venv: &VirtualEnvironment,
        rng: &mut dyn RngCore,
        cache: &mut MapCache,
    ) -> Result<MapOutcome, MapError> {
        let cfg = &self.config;
        let start = Instant::now();
        let links = links_by_descending_bw(venv);
        let mut state = PlacementState::new(phys, venv);
        cache.trace.emit(|| TraceEvent::MapStart {
            mapper: "SA".into(),
            guests: venv.guest_count() as u64,
            links: venv.link_count() as u64,
        });

        // Borrow the reusable search buffers out of the cache for the run;
        // they go back before the Networking stage needs the whole cache.
        let anneal_reuses_before = cache.anneal.reuses();
        cache.anneal.begin();
        let mut hosts = std::mem::take(&mut cache.anneal.hosts);
        let mut best_placement = std::mem::take(&mut cache.anneal.best);
        let mut displaced = std::mem::take(&mut cache.anneal.displaced);
        hosts.extend_from_slice(phys.hosts());

        // --- Initial placement.
        let t_place = Instant::now();
        cache.trace.emit(|| TraceEvent::PhaseStart {
            phase: Phase::Hosting,
        });
        let mut hosting_counters = PhaseCounters::default();
        if cfg.seed_with_hosting {
            let h = match hosting_stage(&mut state, &links) {
                Ok(h) => h,
                Err(e) => {
                    // Close the open phase even on failure: trace
                    // consumers rely on bracketed PhaseStart/PhaseEnd.
                    cache.trace.emit(|| TraceEvent::PhaseEnd {
                        phase: Phase::Hosting,
                        elapsed_us: crate::hmn::elapsed_us(t_place),
                        counters: PhaseCounters::default(),
                    });
                    cache.trace.emit(|| TraceEvent::MapEnd {
                        ok: false,
                        objective: None,
                        elapsed_us: crate::hmn::elapsed_us(start),
                    });
                    return Err(e);
                }
            };
            hosting_counters.colocation_hits = h.colocation_hits as u64;
            hosting_counters.first_fit_fallbacks = h.first_fit_fallbacks as u64;
            migration_stage(&mut state);
        } else {
            let mut fitting: Vec<NodeId> = Vec::with_capacity(hosts.len());
            for g in venv.guest_ids() {
                fitting.clear();
                fitting.extend(hosts.iter().copied().filter(|&h| state.fits(g, h)));
                if fitting.is_empty() {
                    cache.trace.emit(|| TraceEvent::PhaseEnd {
                        phase: Phase::Hosting,
                        elapsed_us: crate::hmn::elapsed_us(t_place),
                        counters: PhaseCounters::default(),
                    });
                    cache.trace.emit(|| TraceEvent::MapEnd {
                        ok: false,
                        objective: None,
                        elapsed_us: crate::hmn::elapsed_us(start),
                    });
                    return Err(MapError::HostingFailed { guest: g });
                }
                let pick = fitting[rng.gen_range(0..fitting.len())];
                state.assign(g, pick).expect("candidate verified");
            }
        }
        cache.trace.emit(|| TraceEvent::PhaseEnd {
            phase: Phase::Hosting,
            elapsed_us: crate::hmn::elapsed_us(t_place),
            counters: hosting_counters,
        });

        // --- Anneal.
        let guest_count = venv.guest_count();
        let bw_scale = {
            // Natural scale: average per-host CPU capacity per unit of the
            // total virtual bandwidth, folded so both terms are O(objective).
            let total_bw: f64 = venv.link_ids().map(|l| venv.link(l).bw.value()).sum();
            if total_bw > 0.0 {
                total_bw / phys.host_count() as f64
            } else {
                0.0
            }
        };
        let bw_enabled = cfg.bandwidth_weight != 0.0 && bw_scale != 0.0;
        let energy_of = |objective: f64, bw_inter: f64| {
            if bw_enabled {
                // Normalize the bandwidth term to the objective's scale so
                // neither dominates by unit choice.
                objective + cfg.bandwidth_weight * bw_inter / bw_scale
            } else {
                objective
            }
        };
        // The inter-host bandwidth is scanned once here and then maintained
        // as a running value: each proposal contributes an O(degree) delta.
        let mut bw_inter = if bw_enabled {
            state.inter_host_bandwidth().value()
        } else {
            0.0
        };
        let mut current = energy_of(state.objective(), bw_inter);
        let mut best_energy = current;
        best_placement.extend(
            venv.guest_ids()
                .map(|g| state.host_of(g).expect("complete")),
        );
        let mut temperature = (current * cfg.initial_temperature_factor).max(1e-6);
        let mut accepted = 0usize;
        let mut rejected = 0usize;
        let mut proposals = 0usize;
        let delta_evals_before = state.delta_evaluations();
        let full_evals_before = state.full_evaluations();

        let t_anneal = Instant::now();
        cache.trace.emit(|| TraceEvent::PhaseStart {
            phase: Phase::Migration,
        });
        if guest_count > 0 && hosts.len() > 1 {
            for _ in 0..cfg.iterations {
                // Propose: move one random guest to one random other host.
                let g = GuestId::from_index(rng.gen_range(0..guest_count));
                let from = state.host_of(g).expect("complete");
                let to = hosts[rng.gen_range(0..hosts.len())];
                if to == from || !state.fits(g, to) {
                    temperature *= cfg.cooling;
                    continue;
                }
                // Delta evaluation: O(1) objective + O(degree) bandwidth,
                // with no state mutation. Accept commits the tracked
                // values; reject costs nothing.
                let objective_after = state.objective_if_migrated(g, to);
                let bw_after = if bw_enabled {
                    bw_inter + state.inter_bandwidth_delta(g, to).value()
                } else {
                    bw_inter
                };
                let proposed = energy_of(objective_after, bw_after);
                proposals += 1;
                let delta = proposed - current;
                let accept =
                    delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature.max(1e-12)).exp();
                if accept {
                    state.migrate(g, to).expect("fit checked");
                    current = proposed;
                    bw_inter = bw_after;
                    accepted += 1;
                    if proposed < best_energy {
                        best_energy = proposed;
                        for (i, slot) in best_placement.iter_mut().enumerate() {
                            *slot = state.host_of(GuestId::from_index(i)).expect("complete");
                        }
                    }
                } else {
                    rejected += 1;
                }
                temperature *= cfg.cooling;
            }
        }

        // Restore the best placement visited. One-by-one migration could
        // transiently violate capacity (a swap needs both slots free at
        // once), so unassign every displaced guest first, then reassign —
        // the target state as a whole was feasible when recorded.
        displaced.extend(
            (0..guest_count)
                .map(GuestId::from_index)
                .filter(|&g| state.host_of(g) != Some(best_placement[g.index()])),
        );
        for &g in &displaced {
            state.unassign(g);
        }
        for &g in &displaced {
            state
                .assign(g, best_placement[g.index()])
                .expect("best placement was feasible when recorded");
        }
        let delta_evaluations = state.delta_evaluations() - delta_evals_before;
        let full_evaluations = state.full_evaluations() - full_evals_before;
        cache.trace.emit(|| TraceEvent::PhaseEnd {
            phase: Phase::Migration,
            elapsed_us: crate::hmn::elapsed_us(t_anneal),
            counters: PhaseCounters {
                moves_accepted: accepted as u64,
                moves_rejected: rejected as u64,
                proposals_evaluated: proposals as u64,
                delta_evaluations,
                full_evaluations,
                ..Default::default()
            },
        });
        let placement_time = t_place.elapsed();

        // Return the (possibly grown) buffers to the cache for the next run.
        cache.anneal.hosts = hosts;
        cache.anneal.best = best_placement;
        cache.anneal.displaced = displaced;

        // --- Route.
        let t_route = Instant::now();
        let route_reuses_before = cache.scratch.reuses();
        cache.trace.emit(|| TraceEvent::PhaseStart {
            phase: Phase::Networking,
        });
        let (routes, net) = match networking_stage_with(&mut state, &links, &cfg.astar, cache) {
            Ok(r) => r,
            Err(e) => {
                cache.trace.emit(|| TraceEvent::PhaseEnd {
                    phase: Phase::Networking,
                    elapsed_us: crate::hmn::elapsed_us(t_route),
                    counters: PhaseCounters::default(),
                });
                cache.trace.emit(|| TraceEvent::MapEnd {
                    ok: false,
                    objective: None,
                    elapsed_us: crate::hmn::elapsed_us(start),
                });
                return Err(e);
            }
        };
        cache.trace.emit(|| TraceEvent::PhaseEnd {
            phase: Phase::Networking,
            elapsed_us: crate::hmn::elapsed_us(t_route),
            counters: PhaseCounters {
                astar_expansions: net.search.expanded as u64,
                astar_pushed: net.search.pushed as u64,
                dijkstra_runs: net.dijkstra_runs as u64,
                cache_hits: net.ar_cache_hits as u64,
                ..Default::default()
            },
        });
        let stats = MapStats {
            attempts: 1,
            migrations: accepted,
            migrations_rejected: rejected,
            routed_links: net.routed_links,
            intra_host_links: net.intra_host_links,
            astar_expansions: net.search.expanded,
            dijkstra_runs: net.dijkstra_runs,
            ar_cache_hits: net.ar_cache_hits,
            scratch_reuses: (cache.scratch.reuses() - route_reuses_before)
                + (cache.anneal.reuses() - anneal_reuses_before),
            proposals_evaluated: proposals,
            delta_evaluations: delta_evaluations as usize,
            full_evaluations: full_evaluations as usize,
            placement_time,
            networking_time: t_route.elapsed(),
            total_time: start.elapsed(),
            ..Default::default()
        };
        let mapping = Mapping::new(state.into_placement(), routes);
        let outcome = MapOutcome::new(phys, venv, mapping, stats);
        cache.trace.emit(|| TraceEvent::MapEnd {
            ok: true,
            objective: Some(outcome.objective),
            elapsed_us: crate::hmn::elapsed_us(start),
        });
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Hmn;
    use emumap_graph::generators;
    use emumap_model::{
        validate_mapping, GuestSpec, HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips, StorGb,
        VLinkSpec, VmmOverhead,
    };
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn phys() -> PhysicalTopology {
        PhysicalTopology::from_shape(
            &generators::torus2d(3, 4),
            std::iter::repeat(HostSpec::new(
                Mips(2000.0),
                MemMb::from_gb(2),
                StorGb(2000.0),
            )),
            LinkSpec::new(Kbps::from_gbps(1.0), Millis(5.0)),
            VmmOverhead::NONE,
        )
    }

    fn venv(n: usize, seed: u64) -> VirtualEnvironment {
        use rand::Rng;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut v = VirtualEnvironment::new();
        let ids: Vec<_> = (0..n)
            .map(|_| {
                v.add_guest(GuestSpec::new(
                    Mips(rng.gen_range(50.0..=100.0)),
                    MemMb(rng.gen_range(128..=256)),
                    StorGb(rng.gen_range(100.0..=200.0)),
                ))
            })
            .collect();
        for w in ids.windows(2) {
            v.add_link(
                w[0],
                w[1],
                VLinkSpec::new(Kbps(rng.gen_range(500.0..=1000.0)), Millis(45.0)),
            );
        }
        v
    }

    #[test]
    fn annealing_produces_valid_mappings() {
        let p = phys();
        let v = venv(30, 1);
        let cfg = AnnealingConfig {
            iterations: 3_000,
            ..Default::default()
        };
        let out = Annealing { config: cfg }
            .map(&p, &v, &mut SmallRng::seed_from_u64(7))
            .unwrap();
        assert_eq!(validate_mapping(&p, &v, &out.mapping), Ok(()));
    }

    #[test]
    fn annealing_is_reproducible_per_seed() {
        let p = phys();
        let v = venv(20, 2);
        let cfg = AnnealingConfig {
            iterations: 1_000,
            ..Default::default()
        };
        let a = Annealing { config: cfg }
            .map(&p, &v, &mut SmallRng::seed_from_u64(3))
            .unwrap();
        let b = Annealing { config: cfg }
            .map(&p, &v, &mut SmallRng::seed_from_u64(3))
            .unwrap();
        assert_eq!(a.mapping, b.mapping);
    }

    #[test]
    fn annealing_improves_on_a_random_start() {
        let p = phys();
        let v = venv(30, 4);
        let none = Annealing {
            config: AnnealingConfig {
                iterations: 0,
                seed_with_hosting: false,
                ..Default::default()
            },
        }
        .map(&p, &v, &mut SmallRng::seed_from_u64(5))
        .unwrap();
        let annealed = Annealing {
            config: AnnealingConfig {
                iterations: 8_000,
                seed_with_hosting: false,
                bandwidth_weight: 0.0, // pure Eq. 10 for a clean comparison
                ..Default::default()
            },
        }
        .map(&p, &v, &mut SmallRng::seed_from_u64(5))
        .unwrap();
        assert!(
            annealed.objective <= none.objective,
            "annealing should not end worse than its random start: {} vs {}",
            annealed.objective,
            none.objective
        );
    }

    #[test]
    fn annealing_from_hosting_is_competitive_with_hmn() {
        let p = phys();
        let v = venv(24, 6);
        let hmn = Hmn::new()
            .map(&p, &v, &mut SmallRng::seed_from_u64(1))
            .unwrap();
        let sa = Annealing {
            config: AnnealingConfig {
                iterations: 10_000,
                bandwidth_weight: 0.0,
                ..Default::default()
            },
        }
        .map(&p, &v, &mut SmallRng::seed_from_u64(1))
        .unwrap();
        // SA explores beyond HMN's greedy fixpoint; with a pure Eq. 10
        // energy it must match or beat HMN's balance on this instance.
        assert!(
            sa.objective <= hmn.objective + 1e-9,
            "SA {} vs HMN {}",
            sa.objective,
            hmn.objective
        );
    }

    #[test]
    fn bandwidth_weight_increases_colocation() {
        let p = phys();
        let v = venv(30, 8);
        let run = |w: f64| {
            Annealing {
                config: AnnealingConfig {
                    iterations: 8_000,
                    bandwidth_weight: w,
                    ..Default::default()
                },
            }
            .map(&p, &v, &mut SmallRng::seed_from_u64(2))
            .unwrap()
        };
        let balanced_only = run(0.0);
        let with_affinity = run(2.0);
        assert!(
            with_affinity.mapping.intra_host_link_count()
                >= balanced_only.mapping.intra_host_link_count(),
            "bandwidth term should keep chatty guests together ({} vs {})",
            with_affinity.mapping.intra_host_link_count(),
            balanced_only.mapping.intra_host_link_count()
        );
    }

    #[test]
    fn empty_venv_is_fine() {
        let p = phys();
        let v = VirtualEnvironment::new();
        let out = Annealing::default()
            .map(&p, &v, &mut SmallRng::seed_from_u64(1))
            .unwrap();
        assert_eq!(out.mapping.guest_count(), 0);
    }
}
