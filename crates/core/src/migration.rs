//! HMN stage 2 — **Migration** (§4.2): improve load balance by moving
//! guests off the most-loaded host.
//!
//! Each iteration:
//! 1. pick the most-loaded host (smallest residual CPU — load is measured
//!    in residual CPU so heterogeneous hosts compare fairly),
//! 2. on it, pick the guest with the smallest total bandwidth to co-located
//!    guests ("in order to minimize utilization of physical links"),
//! 3. scan candidate destinations from least loaded (largest residual CPU)
//!    and move the guest to the first destination that both fits it and
//!    strictly improves the Eq. 10 load-balance factor.
//!
//! The process repeats while the factor improves; when no improving move
//! exists *for the chosen guest of the most-loaded host*, the stage stops
//! (exactly the paper's stopping rule — it does not consider other guests
//! of that host).

use crate::state::PlacementState;
use emumap_graph::NodeId;
use emumap_model::GuestId;

/// Statistics from a Migration run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MigrationStats {
    /// Number of guests moved.
    pub migrations: usize,
    /// Candidate moves evaluated (destination fits the guest) but not
    /// taken because they failed to improve Eq. 10.
    pub rejected: usize,
    /// Candidate moves whose objective was evaluated (accepted plus
    /// rejected) — each one an O(1) delta probe of the accumulator.
    pub proposals_evaluated: usize,
    /// Objective (Eq. 10) before the stage.
    pub objective_before: f64,
    /// Objective after the stage.
    pub objective_after: f64,
}

/// Which migration refinement runs between Hosting and Networking.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MigrationPolicy {
    /// The paper's §4.2 rule: one candidate guest (minimum co-located
    /// bandwidth) from the single most-loaded host per iteration; stop
    /// when that candidate cannot improve Eq. 10.
    #[default]
    Paper,
    /// Steepest-descent extension (the §6 "better heuristics" direction):
    /// every iteration considers *every* guest on the most-loaded host and
    /// every destination, and performs the single move that improves
    /// Eq. 10 the most; among equal improvements, the guest with the
    /// least co-located bandwidth moves (preserving the paper's
    /// keep-affine-pairs-together intent). Strictly at least as good as
    /// [`MigrationPolicy::Paper`] on the objective, at higher cost.
    Exhaustive,
    /// Skip the stage entirely (ablation).
    Off,
}

/// The most-loaded host: smallest residual CPU, ties by id. Only hosts with
/// at least one guest qualify (an empty host has nothing to migrate).
fn most_loaded_occupied_host(state: &PlacementState<'_>) -> Option<NodeId> {
    state
        .phys()
        .hosts()
        .iter()
        .copied()
        .filter(|&h| !state.guests_on(h).is_empty())
        .min_by(|&a, &b| {
            state
                .residual()
                .proc(a)
                .partial_cmp(&state.residual().proc(b))
                .expect("CPU residuals are finite")
                .then(a.cmp(&b))
        })
}

/// The guest on `host` with the smallest co-located bandwidth (ties by id).
fn cheapest_guest_to_move(state: &PlacementState<'_>, host: NodeId) -> GuestId {
    state
        .guests_on(host)
        .iter()
        .copied()
        .min_by(|&a, &b| {
            state
                .co_located_bandwidth(a)
                .partial_cmp(&state.co_located_bandwidth(b))
                .expect("bandwidths are finite")
                .then(a.cmp(&b))
        })
        .expect("host is occupied")
}

/// Runs the Migration stage to fixpoint. Always succeeds (migration can
/// only refine a complete assignment).
///
/// # Panics
/// Panics if the assignment is incomplete — Hosting must run first.
pub fn migration_stage(state: &mut PlacementState<'_>) -> MigrationStats {
    assert!(
        state.is_complete(),
        "migration requires a complete assignment"
    );
    let mut stats = MigrationStats {
        objective_before: state.objective(),
        ..Default::default()
    };

    // Hoisted out of the loop so the steady-state search allocates
    // nothing; refilled (capacity kept) each iteration.
    let mut destinations: Vec<NodeId> = Vec::with_capacity(state.phys().host_count());
    loop {
        let current = state.objective();
        let Some(origin) = most_loaded_occupied_host(state) else {
            break; // no occupied host: empty virtual environment
        };
        let guest = cheapest_guest_to_move(state, origin);

        // Destinations from least loaded (largest residual CPU) downward.
        destinations.clear();
        destinations.extend(
            state
                .phys()
                .hosts()
                .iter()
                .copied()
                .filter(|&h| h != origin),
        );
        destinations.sort_by(|&a, &b| {
            state
                .residual()
                .proc(b)
                .partial_cmp(&state.residual().proc(a))
                .expect("CPU residuals are finite")
                .then(a.cmp(&b))
        });

        let mut moved = false;
        for &dest in &destinations {
            if !state.fits(guest, dest) {
                continue;
            }
            stats.proposals_evaluated += 1;
            if state.objective_if_migrated(guest, dest) < current {
                state.migrate(guest, dest).expect("fit checked");
                stats.migrations += 1;
                moved = true;
                break;
            }
            stats.rejected += 1;
        }
        if !moved {
            break;
        }
    }

    stats.objective_after = state.objective();
    stats
}

/// Steepest-descent migration ([`MigrationPolicy::Exhaustive`]): per
/// iteration, the best improving (guest, destination) move among all
/// guests of the most-loaded host. Terminates because every move strictly
/// decreases Eq. 10.
pub fn migration_stage_exhaustive(state: &mut PlacementState<'_>) -> MigrationStats {
    assert!(
        state.is_complete(),
        "migration requires a complete assignment"
    );
    let mut stats = MigrationStats {
        objective_before: state.objective(),
        ..Default::default()
    };

    let mut guests: Vec<GuestId> = Vec::new();
    loop {
        let current = state.objective();
        let Some(origin) = most_loaded_occupied_host(state) else {
            break;
        };
        // Best move: (objective gain, guest co-located bw as tiebreak).
        let mut best: Option<(f64, emumap_model::Kbps, GuestId, NodeId)> = None;
        guests.clear();
        guests.extend_from_slice(state.guests_on(origin));
        for &g in &guests {
            let colo = state.co_located_bandwidth(g);
            for &dest in state.phys().hosts() {
                if dest == origin || !state.fits(g, dest) {
                    continue;
                }
                stats.proposals_evaluated += 1;
                let after = state.objective_if_migrated(g, dest);
                if after >= current - 1e-12 {
                    stats.rejected += 1;
                    continue;
                }
                let better = match &best {
                    None => true,
                    Some((b_after, b_colo, b_g, _)) => {
                        after < *b_after - 1e-12
                            || ((after - *b_after).abs() <= 1e-12
                                && (colo < *b_colo || (colo == *b_colo && g < *b_g)))
                    }
                };
                if better {
                    best = Some((after, colo, g, dest));
                }
            }
        }
        let Some((_, _, guest, dest)) = best else {
            break;
        };
        state.migrate(guest, dest).expect("fit checked");
        stats.migrations += 1;
    }

    stats.objective_after = state.objective();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use emumap_graph::generators;
    use emumap_model::{
        GuestSpec, HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips, PhysicalTopology, StorGb,
        VLinkSpec, VirtualEnvironment, VmmOverhead,
    };

    fn phys(n: usize) -> PhysicalTopology {
        PhysicalTopology::from_shape(
            &generators::ring(n),
            std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(4096), StorGb(1000.0))),
            LinkSpec::new(Kbps(1_000_000.0), Millis(5.0)),
            VmmOverhead::NONE,
        )
    }

    fn cpu_guest(mips: f64) -> GuestSpec {
        GuestSpec::new(Mips(mips), MemMb(64), StorGb(1.0))
    }

    #[test]
    fn spreads_a_pileup() {
        let p = phys(4);
        let mut venv = VirtualEnvironment::new();
        let guests: Vec<_> = (0..4).map(|_| venv.add_guest(cpu_guest(100.0))).collect();
        let mut st = PlacementState::new(&p, &venv);
        // All four guests start on host 0 (badly imbalanced).
        for &g in &guests {
            st.assign(g, p.hosts()[0]).unwrap();
        }
        let stats = migration_stage(&mut st);
        assert!(stats.objective_after < stats.objective_before);
        assert_eq!(
            stats.objective_after, 0.0,
            "uniform guests over uniform hosts balance exactly"
        );
        assert_eq!(stats.migrations, 3);
        assert_eq!(
            stats.proposals_evaluated,
            stats.migrations + stats.rejected,
            "every evaluated candidate is either taken or rejected"
        );
        // One guest per host.
        for &h in p.hosts() {
            assert_eq!(st.guests_on(h).len(), 1);
        }
    }

    #[test]
    fn balanced_state_is_a_fixpoint() {
        let p = phys(2);
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(cpu_guest(100.0));
        let b = venv.add_guest(cpu_guest(100.0));
        let mut st = PlacementState::new(&p, &venv);
        st.assign(a, p.hosts()[0]).unwrap();
        st.assign(b, p.hosts()[1]).unwrap();
        let stats = migration_stage(&mut st);
        assert_eq!(stats.migrations, 0);
        assert_eq!(stats.objective_before, stats.objective_after);
        assert_eq!(
            stats.rejected, 1,
            "the one fitting destination was evaluated and rejected"
        );
        assert_eq!(stats.proposals_evaluated, 1);
    }

    #[test]
    fn prefers_moving_low_bandwidth_guests() {
        let p = phys(2);
        let mut venv = VirtualEnvironment::new();
        // Three guests on host 0: a-b tied by a fat link, c unconnected.
        let a = venv.add_guest(cpu_guest(100.0));
        let b = venv.add_guest(cpu_guest(100.0));
        let c = venv.add_guest(cpu_guest(100.0));
        venv.add_link(a, b, VLinkSpec::new(Kbps(5000.0), Millis(60.0)));
        let mut st = PlacementState::new(&p, &venv);
        for &g in &[a, b, c] {
            st.assign(g, p.hosts()[0]).unwrap();
        }
        migration_stage(&mut st);
        // c (zero co-located bandwidth) is the cheapest to move; a and b
        // stay together.
        assert_eq!(st.host_of(c), Some(p.hosts()[1]));
        assert_eq!(st.host_of(a), Some(p.hosts()[0]));
        assert_eq!(st.host_of(b), Some(p.hosts()[0]));
    }

    #[test]
    fn respects_hard_constraints_at_destination() {
        let shape = generators::line(2);
        let p = PhysicalTopology::from_shape(
            &shape,
            [
                HostSpec::new(Mips(1000.0), MemMb(4096), StorGb(1000.0)),
                HostSpec::new(Mips(1000.0), MemMb(10), StorGb(1000.0)), // tiny memory
            ]
            .into_iter(),
            LinkSpec::new(Kbps(1000.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(GuestSpec::new(Mips(100.0), MemMb(64), StorGb(1.0)));
        let b = venv.add_guest(GuestSpec::new(Mips(100.0), MemMb(64), StorGb(1.0)));
        let mut st = PlacementState::new(&p, &venv);
        st.assign(a, p.hosts()[0]).unwrap();
        st.assign(b, p.hosts()[0]).unwrap();
        let stats = migration_stage(&mut st);
        // Balance would improve by moving one guest, but host 1 cannot take
        // any guest: no migration may happen — and an unfitting destination
        // is not an evaluated proposal, so nothing counts as rejected.
        assert_eq!(stats.migrations, 0);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.proposals_evaluated, 0);
    }

    #[test]
    fn heterogeneous_cpu_balances_residual_not_count() {
        let shape = generators::line(2);
        let p = PhysicalTopology::from_shape(
            &shape,
            [
                HostSpec::new(Mips(3000.0), MemMb(4096), StorGb(1000.0)),
                HostSpec::new(Mips(1000.0), MemMb(4096), StorGb(1000.0)),
            ]
            .into_iter(),
            LinkSpec::new(Kbps(1000.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let mut venv = VirtualEnvironment::new();
        let guests: Vec<_> = (0..4).map(|_| venv.add_guest(cpu_guest(250.0))).collect();
        let mut st = PlacementState::new(&p, &venv);
        // All on the small host: residuals (3000, 0) -> stddev 1500.
        for &g in &guests {
            st.assign(g, p.hosts()[1]).unwrap();
        }
        let stats = migration_stage(&mut st);
        // Optimal split: all four guests on the big host gives residuals
        // (2000, 1000), stddev 500; three on big host gives (2250, 750),
        // stddev 750; the fixpoint must improve on 1500.
        assert!(stats.objective_after < 1500.0);
        assert!(stats.migrations >= 2);
        // More CPU work lands on the 3000-MIPS host than on the 1000-MIPS
        // host.
        assert!(st.guests_on(p.hosts()[0]).len() > st.guests_on(p.hosts()[1]).len());
    }

    #[test]
    fn empty_virtual_environment_is_ok() {
        let p = phys(3);
        let venv = VirtualEnvironment::new();
        let mut st = PlacementState::new(&p, &venv);
        let stats = migration_stage(&mut st);
        assert_eq!(stats.migrations, 0);
    }

    #[test]
    #[should_panic(expected = "complete assignment")]
    fn panics_on_incomplete_assignment() {
        let p = phys(2);
        let mut venv = VirtualEnvironment::new();
        venv.add_guest(cpu_guest(10.0));
        let mut st = PlacementState::new(&p, &venv);
        migration_stage(&mut st);
    }
}

#[cfg(test)]
mod exhaustive_tests {
    use super::*;
    use crate::state::PlacementState;
    use emumap_graph::generators;
    use emumap_model::{
        GuestSpec, HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips, PhysicalTopology, StorGb,
        VirtualEnvironment, VmmOverhead,
    };

    fn phys(caps: &[f64]) -> PhysicalTopology {
        PhysicalTopology::from_shape(
            &generators::ring(caps.len().max(3)),
            caps.iter()
                .map(|&c| HostSpec::new(Mips(c), MemMb(4096), StorGb(1000.0)))
                .chain(std::iter::repeat(HostSpec::new(
                    Mips(1000.0),
                    MemMb(4096),
                    StorGb(1000.0),
                ))),
            LinkSpec::new(Kbps(1_000_000.0), Millis(5.0)),
            VmmOverhead::NONE,
        )
    }

    #[test]
    fn exhaustive_never_worse_than_paper_policy() {
        // A pileup both policies can fix; the exhaustive fixpoint must be
        // at least as balanced.
        let p = phys(&[1000.0, 2000.0, 3000.0]);
        let mut venv = VirtualEnvironment::new();
        let guests: Vec<_> = (0..6)
            .map(|i| {
                venv.add_guest(GuestSpec::new(
                    Mips(100.0 + 50.0 * i as f64),
                    MemMb(64),
                    StorGb(1.0),
                ))
            })
            .collect();
        let build = |policy_paper: bool| {
            let mut st = PlacementState::new(&p, &venv);
            for &g in &guests {
                st.assign(g, p.hosts()[0]).unwrap();
            }
            if policy_paper {
                migration_stage(&mut st)
            } else {
                migration_stage_exhaustive(&mut st)
            }
        };
        let paper = build(true);
        let exhaustive = build(false);
        assert!(exhaustive.objective_after <= paper.objective_after + 1e-9);
        assert!(exhaustive.objective_after < exhaustive.objective_before);
    }

    #[test]
    fn exhaustive_escapes_a_paper_policy_fixpoint() {
        // Construct a state where the paper's single-candidate rule stalls
        // (the minimum-co-located-bandwidth guest cannot improve) but some
        // OTHER guest on the most-loaded host can. Host 0 holds a small
        // guest (10 MIPS, zero links => the paper's candidate) and a big
        // one (400 MIPS). Residuals: h0 = 1000-410 = 590, h1 = 1000,
        // h2 = 1000... mean moves make the small guest useless: moving 10
        // MIPS barely changes stddev but CAN still improve it slightly, so
        // pin it instead with memory: make the small guest NOT fit
        // elsewhere.
        let shape = generators::line(2);
        let p = PhysicalTopology::from_shape(
            &shape,
            [
                HostSpec::new(Mips(1000.0), MemMb(4096), StorGb(1000.0)),
                HostSpec::new(Mips(1000.0), MemMb(100), StorGb(1000.0)), // tiny memory
            ]
            .into_iter(),
            LinkSpec::new(Kbps(1000.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let mut venv = VirtualEnvironment::new();
        // Candidate by min co-located bw: the zero-link small guest; but it
        // needs 512 MB and host 1 only has 100 MB.
        let small = venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(512), StorGb(1.0)));
        // The big guest fits host 1 (64 MB) and moving it improves balance:
        // residuals go from (590, 1000) to (990, 600).
        let big = venv.add_guest(GuestSpec::new(Mips(400.0), MemMb(64), StorGb(1.0)));
        let mut st = PlacementState::new(&p, &venv);
        st.assign(small, p.hosts()[0]).unwrap();
        st.assign(big, p.hosts()[0]).unwrap();

        let mut st_paper = PlacementState::new(&p, &venv);
        st_paper.assign(small, p.hosts()[0]).unwrap();
        st_paper.assign(big, p.hosts()[0]).unwrap();
        let paper = migration_stage(&mut st_paper);
        assert_eq!(
            paper.migrations, 0,
            "paper policy stalls on the unmovable candidate"
        );

        let exhaustive = migration_stage_exhaustive(&mut st);
        assert_eq!(
            exhaustive.migrations, 1,
            "exhaustive policy moves the big guest"
        );
        assert!(exhaustive.objective_after < paper.objective_after);
        assert_eq!(st.host_of(big), Some(p.hosts()[1]));
    }

    #[test]
    fn exhaustive_terminates_on_balanced_input() {
        let p = phys(&[1000.0, 1000.0, 1000.0]);
        let mut venv = VirtualEnvironment::new();
        let g: Vec<_> = (0..3)
            .map(|_| venv.add_guest(GuestSpec::new(Mips(100.0), MemMb(64), StorGb(1.0))))
            .collect();
        let mut st = PlacementState::new(&p, &venv);
        for (i, &gg) in g.iter().enumerate() {
            st.assign(gg, p.hosts()[i]).unwrap();
        }
        let stats = migration_stage_exhaustive(&mut st);
        assert_eq!(stats.migrations, 0);
    }
}
