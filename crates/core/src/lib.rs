//! # emumap-core
//!
//! The mapping heuristics of Calheiros, Buyya & De Rose, *"A Heuristic for
//! Mapping Virtual Machines and Links in Emulation Testbeds"* (ICPP 2009) —
//! the paper's primary contribution:
//!
//! * [`Hmn`] — the **Hosting–Migration–Networking** heuristic (§4):
//!   affinity-driven placement, load-balance refinement, and widest-path
//!   routing with the modified 1-constrained A\*Prune;
//! * the evaluation's baselines (§5): [`RandomDfs`] (R), [`RandomAStar`]
//!   (RA) and [`HostingDfs`] (HS);
//! * the future-work extensions (§6): [`ConsolidatingHmn`] (minimize hosts
//!   used) and [`HeuristicPool`] (select among heuristics per scenario);
//! * the extension family beyond the paper — greedy bin-packing baselines,
//!   [`Annealing`] (SA), [`ParallelTempering`] (PT) and
//!   [`RandomizedRounding`] (RR, LP relaxation + seeded rounding) — all
//!   enumerated by the [`MAPPERS`] registry, the single registration site
//!   every harness surface (CLI, bench, compare, serve) derives from.
//!
//! Stages are public ([`hosting`], [`migration`], [`networking`],
//! [`astar_prune`](mod@astar_prune)) so they can be recombined, benchmarked and ablated
//! independently.
//!
//! ## Example
//!
//! ```
//! use emumap_core::{Hmn, Mapper};
//! use emumap_graph::generators;
//! use emumap_model::{
//!     validate_mapping, GuestSpec, HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips,
//!     PhysicalTopology, StorGb, VLinkSpec, VirtualEnvironment, VmmOverhead,
//! };
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! // A 3x4 torus of 2 GHz-class hosts.
//! let phys = PhysicalTopology::from_shape(
//!     &generators::torus2d(3, 4),
//!     std::iter::repeat(HostSpec::new(Mips(2000.0), MemMb::from_gb(2), StorGb(2000.0))),
//!     LinkSpec::new(Kbps::from_gbps(1.0), Millis(5.0)),
//!     VmmOverhead::NONE,
//! );
//!
//! // A small virtual chain.
//! let mut venv = VirtualEnvironment::new();
//! let guests: Vec<_> = (0..6)
//!     .map(|_| venv.add_guest(GuestSpec::new(Mips(75.0), MemMb(192), StorGb(150.0))))
//!     .collect();
//! for pair in guests.windows(2) {
//!     venv.add_link(pair[0], pair[1], VLinkSpec::new(Kbps(750.0), Millis(45.0)));
//! }
//!
//! let outcome = Hmn::new().map(&phys, &venv, &mut SmallRng::seed_from_u64(0)).unwrap();
//! assert_eq!(validate_mapping(&phys, &venv, &outcome.mapping), Ok(()));
//! println!("objective = {:.1} MIPS stddev", outcome.objective);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annealing;
pub mod astar_prune;
pub mod cache;
pub mod consolidation;
pub mod dfs_routing;
pub mod diagnostics;
mod error;
pub mod exact;
mod greedy;
mod hmn;
pub mod hosting;
pub mod ksp_routing;
pub mod lagrangian;
mod mapper;
pub mod migration;
pub mod networking;
pub mod parallel;
mod pool;
mod random;
mod registry;
pub mod rounding;
pub mod serve;
mod state;
pub mod tempering;

pub use annealing::{Annealing, AnnealingConfig};
pub use astar_prune::{
    astar_prune, astar_prune_with, AStarPruneConfig, PathMetric, RouteScratch, SearchStats,
};
pub use cache::{AnnealScratch, ArTables, MapCache, RoundingScratch};
pub use consolidation::{drain_stage, ConsolidatingHmn, DrainStats};
pub use dfs_routing::{
    hop_distances, naive_dfs_route, naive_dfs_route_csr, naive_dfs_route_with, DfsScratch,
    WANDER_PROBABILITY,
};
pub use diagnostics::{
    cluster_diagnostics, diagnose_route, residual_max_flow, ClusterDiagnostics, RouteVerdict,
};
pub use error::MapError;
pub use exact::{
    residual_stddev_lower_bound, solve_exact, solve_exact_with, BoundKind, ExactConfig,
    ExactOutcome, ExactSolution, ExactStats, ExactStatus,
};
pub use greedy::{BestFit, FirstFitDecreasing, WorstFit};
pub use hmn::{Hmn, HmnConfig, LinkOrder};
pub use hosting::{
    hosting_stage, hosting_stage_with, links_by_descending_bw, HostingPolicy, HostingStats,
};
pub use ksp_routing::{networking_stage_ksp, networking_stage_ksp_with, HmnKsp};
pub use lagrangian::{
    lagrangian_bound, lagrangian_bound_for_partial, tightest_peer_bounds, LagrangianBound,
    LagrangianConfig, LagrangianScratch, NodeView,
};
pub use mapper::{MapOutcome, MapStats, Mapper};
pub use migration::{migration_stage, migration_stage_exhaustive, MigrationPolicy, MigrationStats};
pub use networking::{networking_stage, networking_stage_with, NetworkingStats};
pub use parallel::{ParallelRunner, PhaseTotals};
pub use pool::{HeuristicPool, PoolPolicy};
pub use random::{HostingDfs, RandomAStar, RandomDfs, DEFAULT_MAX_ATTEMPTS};
pub use registry::{
    build_mapper, find_mapper, mapper_keys, mapper_usage, MapperConfig, MapperEntry, MAPPERS,
};
pub use rounding::{RandomizedRounding, RoundingConfig};
pub use serve::{
    AdmitReport, ApplyOutcome, RemoveReport, ServeError, Session, Snapshot, StatusReport,
    TenantRecord, SNAPSHOT_VERSION,
};
pub use state::PlacementState;
pub use tempering::{ParallelTempering, TemperingConfig};
