//! HMN stage 3 — **Networking** (§4.3): route every virtual link over the
//! physical network with the modified 1-constrained A\*Prune.
//!
//! Links are processed in descending bandwidth order (heaviest demands get
//! first pick of the capacity); each accepted route immediately commits its
//! bandwidth so later links see the reduced residuals. Links whose guests
//! share a host are "handled inside the host" and never routed — §5.2
//! credits this for the Figure 1 variance.

use crate::astar_prune::{astar_prune_with, AStarPruneConfig, SearchStats};
use crate::cache::MapCache;
use crate::diagnostics::diagnose_route;
use crate::error::MapError;
use crate::state::PlacementState;
use emumap_model::{Route, VLinkId};
use emumap_trace::TraceEvent;

/// Statistics from a Networking run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetworkingStats {
    /// Links actually routed over the network.
    pub routed_links: usize,
    /// Links whose endpoints share a host (no routing needed).
    pub intra_host_links: usize,
    /// Aggregate A\*Prune search effort.
    pub search: SearchStats,
    /// Dijkstra lower-bound tables computed (one per distinct destination
    /// host not already cached).
    pub dijkstra_runs: usize,
    /// `ar[]` lookups answered from the cross-trial cache.
    pub ar_cache_hits: usize,
}

/// Routes `links` (normally in descending-bandwidth order) over the
/// physical network, committing bandwidth into `state`'s residuals.
/// Returns the route table indexed by [`VLinkId::index`] and stats, or the
/// first unroutable link.
///
/// Convenience wrapper over [`networking_stage_with`] using a fresh
/// [`MapCache`] — one-shot callers; the bench runner and parallel workers
/// keep a warm cache instead.
pub fn networking_stage(
    state: &mut PlacementState<'_>,
    links: &[VLinkId],
    config: &AStarPruneConfig,
) -> Result<(Vec<Route>, NetworkingStats), MapError> {
    networking_stage_with(state, links, config, &mut MapCache::new())
}

/// [`networking_stage`] with a caller-owned [`MapCache`].
///
/// `ar[]` tables (Dijkstra latency-to-destination) are cached per
/// destination host: §5.2 observes that "most part of mapping time is
/// spend in the Networking stage to calculate the shortest path of each
/// host to the link destination", and with thousands of links over 40
/// hosts the cache collapses that cost to at most `hosts` runs — and,
/// because the tables depend only on topology latencies, a warm cache
/// carries them across trials on the same cluster, recording those
/// lookups in [`NetworkingStats::ar_cache_hits`].
pub fn networking_stage_with(
    state: &mut PlacementState<'_>,
    links: &[VLinkId],
    config: &AStarPruneConfig,
    cache: &mut MapCache,
) -> Result<(Vec<Route>, NetworkingStats), MapError> {
    assert!(
        state.is_complete(),
        "networking requires a complete assignment"
    );
    let venv = state.venv();
    let phys = state.phys();
    let mut routes = vec![Route::intra_host(); venv.link_count()];
    let mut stats = NetworkingStats::default();

    let MapCache {
        topo,
        scratch,
        trace,
        ..
    } = cache;
    topo.prepare(phys);
    let runs_before = topo.dijkstra_runs();
    let hits_before = topo.hits();

    for &l in links {
        let (vs, vd) = venv.link_endpoints(l);
        let hs = state.host_of(vs).expect("assignment complete");
        let hd = state.host_of(vd).expect("assignment complete");
        if hs == hd {
            stats.intra_host_links += 1;
            trace.emit(|| TraceEvent::LinkIntraHost {
                link: l.index() as u64,
            });
            continue; // routes[l] stays intra-host
        }
        let spec = *venv.link(l);
        let (ar, csr) = topo.ar_and_csr(phys, hd);
        let Some((edges, search)) = astar_prune_with(
            phys,
            state.residual(),
            hs,
            hd,
            spec.bw,
            spec.lat,
            ar,
            config,
            csr,
            scratch,
        ) else {
            // The diagnosis (Dijkstra + max-flow) is expensive, so it runs
            // only when someone is listening.
            if trace.is_enabled() {
                let verdict = diagnose_route(phys, state.residual(), hs, hd, &spec);
                trace.emit(|| TraceEvent::LinkFailed {
                    link: l.index() as u64,
                    verdict: (&verdict).into(),
                });
            }
            return Err(MapError::NetworkingFailed { link: l });
        };
        stats.search.expanded += search.expanded;
        stats.search.pushed += search.pushed;
        stats.search.dominated += search.dominated;
        trace.emit(|| TraceEvent::LinkRouted {
            link: l.index() as u64,
            hops: edges.len() as u64,
        });
        state.residual_mut().commit_route(&edges, spec.bw);
        routes[l.index()] = Route::new(edges);
        stats.routed_links += 1;
    }

    stats.dijkstra_runs = topo.dijkstra_runs() - runs_before;
    stats.ar_cache_hits = topo.hits() - hits_before;
    Ok((routes, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hosting::links_by_descending_bw;
    use emumap_graph::generators;
    use emumap_model::{
        validate_mapping, GuestId, GuestSpec, HostSpec, Kbps, LinkSpec, Mapping, MemMb, Millis,
        Mips, PhysicalTopology, StorGb, VLinkSpec, VirtualEnvironment, VmmOverhead,
    };

    fn phys_line(n: usize, bw: f64) -> PhysicalTopology {
        PhysicalTopology::from_shape(
            &generators::line(n),
            std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(4096), StorGb(1000.0))),
            LinkSpec::new(Kbps(bw), Millis(5.0)),
            VmmOverhead::NONE,
        )
    }

    fn guest() -> GuestSpec {
        GuestSpec::new(Mips(10.0), MemMb(64), StorGb(1.0))
    }

    #[test]
    fn routes_inter_host_and_skips_intra_host() {
        let phys = phys_line(3, 1000.0);
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(guest());
        let b = venv.add_guest(guest());
        let c = venv.add_guest(guest());
        venv.add_link(a, b, VLinkSpec::new(Kbps(100.0), Millis(60.0))); // same host
        venv.add_link(a, c, VLinkSpec::new(Kbps(100.0), Millis(60.0))); // two hops
        let mut st = PlacementState::new(&phys, &venv);
        st.assign(a, phys.hosts()[0]).unwrap();
        st.assign(b, phys.hosts()[0]).unwrap();
        st.assign(c, phys.hosts()[2]).unwrap();
        let (routes, stats) =
            networking_stage(&mut st, &links_by_descending_bw(&venv), &Default::default()).unwrap();
        assert_eq!(stats.intra_host_links, 1);
        assert_eq!(stats.routed_links, 1);
        assert!(routes[0].is_intra_host());
        assert_eq!(routes[1].hop_count(), 2);
        // The full mapping validates.
        let mapping = Mapping::new(
            vec![phys.hosts()[0], phys.hosts()[0], phys.hosts()[2]],
            routes,
        );
        assert_eq!(validate_mapping(&phys, &venv, &mapping), Ok(()));
    }

    #[test]
    fn bandwidth_accumulates_until_saturation() {
        // One physical edge of 250 kbps; three 100 kbps virtual links
        // between hosts 0 and 1 — only two fit.
        let phys = phys_line(2, 250.0);
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(guest());
        let b = venv.add_guest(guest());
        for _ in 0..3 {
            venv.add_link(a, b, VLinkSpec::new(Kbps(100.0), Millis(60.0)));
        }
        let mut st = PlacementState::new(&phys, &venv);
        st.assign(a, phys.hosts()[0]).unwrap();
        st.assign(b, phys.hosts()[1]).unwrap();
        let err = networking_stage(&mut st, &links_by_descending_bw(&venv), &Default::default())
            .unwrap_err();
        assert!(matches!(err, MapError::NetworkingFailed { .. }));
    }

    #[test]
    fn heavy_links_routed_first_claim_direct_paths() {
        // Ring of 4: two disjoint two-hop-free routes between opposite
        // corners. The heavy link should get a feasible route and commit
        // bandwidth; the light link must detour.
        let shape = generators::ring(4);
        let phys = PhysicalTopology::from_shape(
            &shape,
            std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(4096), StorGb(1000.0))),
            LinkSpec::new(Kbps(100.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(guest());
        let b = venv.add_guest(guest());
        // Both links between hosts 0 and 2 (opposite in the ring).
        let heavy = venv.add_link(a, b, VLinkSpec::new(Kbps(80.0), Millis(60.0)));
        let light = venv.add_link(a, b, VLinkSpec::new(Kbps(60.0), Millis(60.0)));
        let mut st = PlacementState::new(&phys, &venv);
        st.assign(a, phys.hosts()[0]).unwrap();
        st.assign(b, phys.hosts()[2]).unwrap();
        let (routes, _) =
            networking_stage(&mut st, &links_by_descending_bw(&venv), &Default::default()).unwrap();
        // Each side of the ring carries one link (80+60 > 100 rules out
        // sharing).
        let h: std::collections::HashSet<_> = routes[heavy.index()].edges().iter().collect();
        let l: std::collections::HashSet<_> = routes[light.index()].edges().iter().collect();
        assert!(h.is_disjoint(&l), "saturated edges force disjoint routes");
        let mapping = Mapping::new(vec![phys.hosts()[0], phys.hosts()[2]], routes);
        assert_eq!(validate_mapping(&phys, &venv, &mapping), Ok(()));
    }

    #[test]
    fn dijkstra_cache_is_per_destination() {
        let phys = phys_line(4, 10_000.0);
        let mut venv = VirtualEnvironment::new();
        let g: Vec<_> = (0..4).map(|_| venv.add_guest(guest())).collect();
        // Three links all ending at guest 3 (same destination host).
        for i in 0..3 {
            venv.add_link(g[i], g[3], VLinkSpec::new(Kbps(10.0), Millis(60.0)));
        }
        let mut st = PlacementState::new(&phys, &venv);
        for (i, &gg) in g.iter().enumerate() {
            st.assign(gg, phys.hosts()[i]).unwrap();
        }
        let (_, stats) =
            networking_stage(&mut st, &links_by_descending_bw(&venv), &Default::default()).unwrap();
        // Destination host is the same for all three links (undirected
        // edges: endpoint order from add_link is preserved, so hd is
        // guest 3's host every time).
        assert_eq!(stats.dijkstra_runs, 1);
        assert_eq!(stats.routed_links, 3);
    }

    #[test]
    fn warm_cache_reuses_tables_across_trials() {
        let phys = phys_line(4, 10_000.0);
        let mut venv = VirtualEnvironment::new();
        let g: Vec<_> = (0..4).map(|_| venv.add_guest(guest())).collect();
        for i in 0..3 {
            venv.add_link(g[i], g[3], VLinkSpec::new(Kbps(10.0), Millis(60.0)));
        }
        let links = links_by_descending_bw(&venv);
        let place = |st: &mut PlacementState<'_>| {
            for (i, &gg) in g.iter().enumerate() {
                st.assign(gg, phys.hosts()[i]).unwrap();
            }
        };

        let mut cache = MapCache::new();
        let mut st = PlacementState::new(&phys, &venv);
        place(&mut st);
        let (routes_cold, cold) =
            networking_stage_with(&mut st, &links, &Default::default(), &mut cache).unwrap();
        assert_eq!(cold.dijkstra_runs, 1);

        // Second "trial" on the same topology: the ar[] table survives.
        let mut st = PlacementState::new(&phys, &venv);
        place(&mut st);
        let (routes_warm, warm) =
            networking_stage_with(&mut st, &links, &Default::default(), &mut cache).unwrap();
        assert_eq!(warm.dijkstra_runs, 0, "warm cache recomputes nothing");
        assert_eq!(warm.ar_cache_hits, 3);
        assert_eq!(routes_cold, routes_warm, "cache must not change routes");
        assert_eq!(cold.search, warm.search);
    }

    #[test]
    fn latency_infeasible_link_fails_cleanly() {
        let phys = phys_line(4, 10_000.0); // 3 hops end-to-end = 15 ms
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(guest());
        let b = venv.add_guest(guest());
        let l = venv.add_link(a, b, VLinkSpec::new(Kbps(10.0), Millis(10.0)));
        let mut st = PlacementState::new(&phys, &venv);
        st.assign(a, phys.hosts()[0]).unwrap();
        st.assign(b, phys.hosts()[3]).unwrap();
        let err = networking_stage(&mut st, &[l], &Default::default()).unwrap_err();
        assert_eq!(err, MapError::NetworkingFailed { link: l });
    }

    #[test]
    fn empty_link_list_is_trivially_ok() {
        let phys = phys_line(2, 100.0);
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(guest());
        let mut st = PlacementState::new(&phys, &venv);
        st.assign(GuestId::from_index(0), phys.hosts()[0]).unwrap();
        let _ = a;
        let (routes, stats) = networking_stage(&mut st, &[], &Default::default()).unwrap();
        assert!(routes.is_empty());
        assert_eq!(stats.routed_links, 0);
    }
}
