//! Classical bin-packing placement strategies combined with A\*Prune
//! routing — the "pool of different heuristics" the paper's future work
//! calls for (§6). They give adopters standard reference points around
//! HMN:
//!
//! * [`FirstFitDecreasing`] — guests by descending memory, first host that
//!   fits (the textbook packing heuristic; also what the feasibility
//!   precheck certifies);
//! * [`BestFit`] — guest goes to the feasible host with the *least*
//!   leftover memory (consolidation-flavoured);
//! * [`WorstFit`] — guest goes to the feasible host with the *most*
//!   residual CPU (pure load-balancing greedy, no affinity and no
//!   migration — a useful ablation of what Hosting's affinity actually
//!   buys).
//!
//! All three route with the Networking stage (descending-bandwidth
//! A\*Prune), so differences between them and HMN isolate the placement
//! policy.

use crate::astar_prune::AStarPruneConfig;
use crate::cache::MapCache;
use crate::error::MapError;
use crate::hosting::links_by_descending_bw;
use crate::mapper::{MapOutcome, MapStats, Mapper};
use crate::networking::networking_stage_with;
use crate::state::PlacementState;
use emumap_graph::NodeId;
use emumap_model::{FeasBitset, GuestId, Mapping, PhysicalTopology, VirtualEnvironment};
use emumap_trace::{Phase, PhaseCounters, TraceEvent};
use rand::RngCore;
use std::time::Instant;

/// Which greedy placement rule to apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Rule {
    FirstFitDecreasing,
    BestFit,
    WorstFit,
}

fn place_greedy(state: &mut PlacementState<'_>, rule: Rule) -> Result<(), MapError> {
    let venv = state.venv();
    // FFD and BestFit order guests by descending memory (the binding
    // resource); WorstFit orders by descending CPU demand (it balances
    // CPU).
    let mut guests: Vec<GuestId> = venv.guest_ids().collect();
    match rule {
        Rule::FirstFitDecreasing | Rule::BestFit => guests.sort_by(|&a, &b| {
            venv.guest(b)
                .mem
                .cmp(&venv.guest(a).mem)
                .then_with(|| {
                    venv.guest(b)
                        .stor
                        .partial_cmp(&venv.guest(a).stor)
                        .expect("finite")
                })
                .then(a.cmp(&b))
        }),
        Rule::WorstFit => guests.sort_by(|&a, &b| {
            venv.guest(b)
                .proc
                .partial_cmp(&venv.guest(a).proc)
                .expect("finite")
                .then(a.cmp(&b))
        }),
    }

    // Candidate filtering runs over the SoA residual columns: one
    // branch-light `fill_feasible` pass marks every feasible host slot,
    // then the rule-specific selection scans only the set bits. This
    // replaces a per-host `fits` call chain with two linear passes over
    // dense columns.
    let mut feasible = FeasBitset::new();
    for g in guests {
        let spec = venv.guest(g);
        let r = state.residual();
        r.fill_feasible(spec, &mut feasible);
        let chosen: Option<NodeId> = match rule {
            // Smallest host id; first fit.
            Rule::FirstFitDecreasing => feasible.iter_ones().map(|s| r.host_at(s)).min(),
            // Tightest memory fit; smaller id on ties.
            Rule::BestFit => {
                let mem = r.mem_column();
                feasible
                    .iter_ones()
                    .map(|s| (mem[s], r.host_at(s)))
                    .min()
                    .map(|(_, h)| h)
            }
            // Most residual CPU; smaller id on ties.
            Rule::WorstFit => {
                let proc = r.proc_column();
                feasible
                    .iter_ones()
                    .map(|s| (proc[s], r.host_at(s)))
                    .fold(None, |best: Option<(f64, NodeId)>, (p, h)| match best {
                        Some((bp, bh)) if p < bp || (p == bp && bh < h) => Some((bp, bh)),
                        _ => Some((p, h)),
                    })
                    .map(|(_, h)| h)
            }
        };
        let host = chosen.ok_or(MapError::HostingFailed { guest: g })?;
        state.assign(g, host).expect("candidate verified");
    }
    Ok(())
}

fn run_greedy_with(
    rule: Rule,
    name: &'static str,
    astar: &AStarPruneConfig,
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
    cache: &mut MapCache,
) -> Result<MapOutcome, MapError> {
    let start = Instant::now();
    let mut state = PlacementState::new(phys, venv);
    cache.trace.emit(|| TraceEvent::MapStart {
        mapper: name.into(),
        guests: venv.guest_count() as u64,
        links: venv.link_count() as u64,
    });
    let t = Instant::now();
    cache.trace.emit(|| TraceEvent::PhaseStart {
        phase: Phase::Hosting,
    });
    if let Err(e) = place_greedy(&mut state, rule) {
        // Close the open phase even on failure: trace consumers rely on
        // PhaseStart/PhaseEnd always being bracketed.
        cache.trace.emit(|| TraceEvent::PhaseEnd {
            phase: Phase::Hosting,
            elapsed_us: crate::hmn::elapsed_us(t),
            counters: PhaseCounters::default(),
        });
        cache.trace.emit(|| TraceEvent::MapEnd {
            ok: false,
            objective: None,
            elapsed_us: crate::hmn::elapsed_us(start),
        });
        return Err(e);
    }
    cache.trace.emit(|| TraceEvent::PhaseEnd {
        phase: Phase::Hosting,
        elapsed_us: crate::hmn::elapsed_us(t),
        counters: PhaseCounters::default(),
    });
    let placement_time = t.elapsed();
    let links = links_by_descending_bw(venv);
    let t = Instant::now();
    cache.trace.emit(|| TraceEvent::PhaseStart {
        phase: Phase::Networking,
    });
    let (routes, net) = match networking_stage_with(&mut state, &links, astar, cache) {
        Ok(r) => r,
        Err(e) => {
            cache.trace.emit(|| TraceEvent::PhaseEnd {
                phase: Phase::Networking,
                elapsed_us: crate::hmn::elapsed_us(t),
                counters: PhaseCounters::default(),
            });
            cache.trace.emit(|| TraceEvent::MapEnd {
                ok: false,
                objective: None,
                elapsed_us: crate::hmn::elapsed_us(start),
            });
            return Err(e);
        }
    };
    cache.trace.emit(|| TraceEvent::PhaseEnd {
        phase: Phase::Networking,
        elapsed_us: crate::hmn::elapsed_us(t),
        counters: PhaseCounters {
            astar_expansions: net.search.expanded as u64,
            astar_pushed: net.search.pushed as u64,
            dijkstra_runs: net.dijkstra_runs as u64,
            cache_hits: net.ar_cache_hits as u64,
            ..Default::default()
        },
    });
    let stats = MapStats {
        attempts: 1,
        routed_links: net.routed_links,
        intra_host_links: net.intra_host_links,
        astar_expansions: net.search.expanded,
        dijkstra_runs: net.dijkstra_runs,
        ar_cache_hits: net.ar_cache_hits,
        placement_time,
        networking_time: t.elapsed(),
        total_time: start.elapsed(),
        ..Default::default()
    };
    let mapping = Mapping::new(state.into_placement(), routes);
    let outcome = MapOutcome::new(phys, venv, mapping, stats);
    cache.trace.emit(|| TraceEvent::MapEnd {
        ok: true,
        objective: Some(outcome.objective),
        elapsed_us: crate::hmn::elapsed_us(start),
    });
    Ok(outcome)
}

macro_rules! greedy_mapper {
    ($(#[$meta:meta])* $name:ident, $rule:expr, $label:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, Debug, Default)]
        pub struct $name {
            /// A\*Prune configuration for the routing phase.
            pub astar: AStarPruneConfig,
        }

        impl Mapper for $name {
            fn name(&self) -> &str {
                $label
            }

            fn map(
                &self,
                phys: &PhysicalTopology,
                venv: &VirtualEnvironment,
                rng: &mut dyn RngCore,
            ) -> Result<MapOutcome, MapError> {
                self.map_with_cache(phys, venv, rng, &mut MapCache::new())
            }

            fn map_with_cache(
                &self,
                phys: &PhysicalTopology,
                venv: &VirtualEnvironment,
                _rng: &mut dyn RngCore,
                cache: &mut MapCache,
            ) -> Result<MapOutcome, MapError> {
                run_greedy_with($rule, $label, &self.astar, phys, venv, cache)
            }
        }
    };
}

greedy_mapper!(
    /// First-fit-decreasing placement (by memory) + A\*Prune routing.
    FirstFitDecreasing,
    Rule::FirstFitDecreasing,
    "FFD"
);
greedy_mapper!(
    /// Best-fit placement (tightest memory) + A\*Prune routing.
    BestFit,
    Rule::BestFit,
    "BF"
);
greedy_mapper!(
    /// Worst-fit placement (most residual CPU) + A\*Prune routing.
    WorstFit,
    Rule::WorstFit,
    "WF"
);

#[cfg(test)]
mod tests {
    use super::*;
    use emumap_graph::generators;
    use emumap_model::{
        validate_mapping, GuestSpec, HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips, StorGb,
        VLinkSpec, VmmOverhead,
    };
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn phys() -> PhysicalTopology {
        PhysicalTopology::from_shape(
            &generators::torus2d(3, 4),
            std::iter::repeat(HostSpec::new(
                Mips(2000.0),
                MemMb::from_gb(2),
                StorGb(2000.0),
            )),
            LinkSpec::new(Kbps::from_gbps(1.0), Millis(5.0)),
            VmmOverhead::NONE,
        )
    }

    fn venv(n: usize) -> VirtualEnvironment {
        let mut v = VirtualEnvironment::new();
        let ids: Vec<_> = (0..n)
            .map(|i| {
                v.add_guest(GuestSpec::new(
                    Mips(50.0 + i as f64),
                    MemMb(128 + (i as u64 * 13) % 128),
                    StorGb(100.0),
                ))
            })
            .collect();
        for w in ids.windows(2) {
            v.add_link(w[0], w[1], VLinkSpec::new(Kbps(500.0), Millis(45.0)));
        }
        v
    }

    #[test]
    fn all_greedy_mappers_produce_valid_mappings() {
        let p = phys();
        let v = venv(20);
        let mappers: Vec<Box<dyn Mapper>> = vec![
            Box::new(FirstFitDecreasing::default()),
            Box::new(BestFit::default()),
            Box::new(WorstFit::default()),
        ];
        for m in mappers {
            let mut rng = SmallRng::seed_from_u64(1);
            let out = m
                .map(&p, &v, &mut rng)
                .unwrap_or_else(|e| panic!("{} failed: {e}", m.name()));
            assert_eq!(
                validate_mapping(&p, &v, &out.mapping),
                Ok(()),
                "{}",
                m.name()
            );
        }
    }

    #[test]
    fn ffd_packs_fewer_hosts_than_worst_fit() {
        let p = phys();
        let v = venv(20);
        let mut rng = SmallRng::seed_from_u64(1);
        let ffd = FirstFitDecreasing::default().map(&p, &v, &mut rng).unwrap();
        let wf = WorstFit::default().map(&p, &v, &mut rng).unwrap();
        assert!(ffd.mapping.hosts_used() <= wf.mapping.hosts_used());
    }

    #[test]
    fn worst_fit_balances_better_than_ffd() {
        let p = phys();
        let v = venv(24);
        let mut rng = SmallRng::seed_from_u64(1);
        let ffd = FirstFitDecreasing::default().map(&p, &v, &mut rng).unwrap();
        let wf = WorstFit::default().map(&p, &v, &mut rng).unwrap();
        assert!(
            wf.objective <= ffd.objective,
            "worst-fit ({}) should balance at least as well as FFD ({})",
            wf.objective,
            ffd.objective
        );
    }

    #[test]
    fn best_fit_is_deterministic() {
        let p = phys();
        let v = venv(15);
        let a = BestFit::default()
            .map(&p, &v, &mut SmallRng::seed_from_u64(1))
            .unwrap();
        let b = BestFit::default()
            .map(&p, &v, &mut SmallRng::seed_from_u64(999))
            .unwrap();
        assert_eq!(a.mapping, b.mapping);
    }

    #[test]
    fn greedy_failure_is_typed() {
        let p = PhysicalTopology::from_shape(
            &generators::line(2),
            std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(64), StorGb(10.0))),
            LinkSpec::new(Kbps(1000.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let mut v = VirtualEnvironment::new();
        v.add_guest(GuestSpec::new(Mips(1.0), MemMb(1024), StorGb(1.0)));
        let mut rng = SmallRng::seed_from_u64(1);
        let err = FirstFitDecreasing::default()
            .map(&p, &v, &mut rng)
            .unwrap_err();
        assert!(matches!(err, MapError::HostingFailed { .. }));
    }
}
