//! The **Hosting–Migration–Networking (HMN) heuristic** — the paper's
//! contribution (§4): three stages run in sequence.
//!
//! 1. [Hosting](crate::hosting) — affinity-driven preliminary placement;
//! 2. [Migration](crate::migration) — load-balance refinement of the
//!    placement (minimizing Eq. 10);
//! 3. [Networking](crate::networking) — widest-path routing of every
//!    virtual link with the modified 1-constrained A\*Prune.
//!
//! [`HmnConfig`] exposes the design decisions DESIGN.md calls out for
//! ablation (migration on/off, link ordering, path metric, lower-bound
//! pruning); the default is exactly the paper's algorithm.

use crate::astar_prune::{AStarPruneConfig, PathMetric};
use crate::cache::MapCache;
use crate::error::MapError;
use crate::hosting::{hosting_stage_with, links_by_descending_bw, HostingPolicy};
use crate::mapper::{MapOutcome, MapStats, Mapper};
use crate::migration::{migration_stage, migration_stage_exhaustive, MigrationPolicy};
use crate::networking::networking_stage_with;
use crate::state::PlacementState;
use emumap_model::{Mapping, PhysicalTopology, VLinkId, VirtualEnvironment};
use emumap_trace::{Phase, PhaseCounters, TraceEvent};
use rand::seq::SliceRandom;
use rand::RngCore;
use std::time::Instant;

/// In which order the Hosting and Networking stages consider virtual links.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LinkOrder {
    /// Descending bandwidth — the paper's order for both stages.
    #[default]
    DescendingBandwidth,
    /// Ascending bandwidth (ablation: the worst plausible order).
    AscendingBandwidth,
    /// Uniformly random order (ablation; uses the mapper's RNG).
    Random,
}

/// Configuration of the HMN heuristic. [`HmnConfig::default`] reproduces
/// the paper exactly.
#[derive(Clone, Copy, Debug)]
pub struct HmnConfig {
    /// Co-location rule in the Hosting stage (paper rule or the
    /// first-fit-colocation fix).
    pub hosting: HostingPolicy,
    /// Which Migration stage refinement to run (paper rule, exhaustive
    /// extension, or off for ablation).
    pub migration: MigrationPolicy,
    /// Link processing order for Hosting and Networking.
    pub link_order: LinkOrder,
    /// Path-selection metric in A\*Prune.
    pub path_metric: PathMetric,
    /// Use the Dijkstra latency lower bound when pruning in A\*Prune.
    pub use_latency_lower_bound: bool,
    /// Safety cap on A\*Prune expansions per link.
    pub max_expansions: usize,
    /// Prune Pareto-dominated partial paths in A\*Prune. Off by default
    /// (the paper keeps every partial path); essential on topologies with
    /// massive equal-cost path multiplicity (fat-trees), where the
    /// unpruned frontier grows exponentially and exhausts
    /// `max_expansions` before any complete path pops.
    pub prune_dominated: bool,
}

impl Default for HmnConfig {
    fn default() -> Self {
        let astar = AStarPruneConfig::default();
        HmnConfig {
            hosting: HostingPolicy::Paper,
            migration: MigrationPolicy::Paper,
            link_order: LinkOrder::DescendingBandwidth,
            path_metric: astar.metric,
            use_latency_lower_bound: astar.use_latency_lower_bound,
            max_expansions: astar.max_expansions,
            prune_dominated: astar.prune_dominated,
        }
    }
}

impl HmnConfig {
    fn astar(&self) -> AStarPruneConfig {
        AStarPruneConfig {
            metric: self.path_metric,
            use_latency_lower_bound: self.use_latency_lower_bound,
            max_expansions: self.max_expansions,
            prune_dominated: self.prune_dominated,
        }
    }
}

/// The HMN mapper.
#[derive(Clone, Copy, Debug, Default)]
pub struct Hmn {
    /// Configuration; default = the paper's algorithm.
    pub config: HmnConfig,
}

impl Hmn {
    /// HMN with the paper's configuration.
    pub fn new() -> Self {
        Hmn::default()
    }

    /// HMN with a custom configuration (ablations).
    pub fn with_config(config: HmnConfig) -> Self {
        Hmn { config }
    }

    fn ordered_links(&self, venv: &VirtualEnvironment, rng: &mut dyn RngCore) -> Vec<VLinkId> {
        match self.config.link_order {
            LinkOrder::DescendingBandwidth => links_by_descending_bw(venv),
            LinkOrder::AscendingBandwidth => {
                let mut links = links_by_descending_bw(venv);
                links.reverse();
                links
            }
            LinkOrder::Random => {
                let mut links: Vec<VLinkId> = venv.link_ids().collect();
                links.shuffle(rng);
                links
            }
        }
    }
}

impl Mapper for Hmn {
    fn name(&self) -> &str {
        "HMN"
    }

    fn map(
        &self,
        phys: &PhysicalTopology,
        venv: &VirtualEnvironment,
        rng: &mut dyn RngCore,
    ) -> Result<MapOutcome, MapError> {
        self.map_with_cache(phys, venv, rng, &mut MapCache::new())
    }

    fn map_with_cache(
        &self,
        phys: &PhysicalTopology,
        venv: &VirtualEnvironment,
        rng: &mut dyn RngCore,
        cache: &mut MapCache,
    ) -> Result<MapOutcome, MapError> {
        let start = Instant::now();
        let mut stats = MapStats {
            attempts: 1,
            ..Default::default()
        };
        let links = self.ordered_links(venv, rng);
        let mut state = PlacementState::new(phys, venv);
        cache.trace.emit(|| TraceEvent::MapStart {
            mapper: "HMN".to_string(),
            guests: venv.guest_count() as u64,
            links: venv.link_count() as u64,
        });

        // Stage 1: Hosting.
        cache.trace.emit(|| TraceEvent::PhaseStart {
            phase: Phase::Hosting,
        });
        let t = Instant::now();
        let hosting = match hosting_stage_with(&mut state, &links, self.config.hosting) {
            Ok(h) => h,
            Err(e) => {
                // Close the open phase even on failure: trace consumers
                // rely on PhaseStart/PhaseEnd always being bracketed.
                cache.trace.emit(|| TraceEvent::PhaseEnd {
                    phase: Phase::Hosting,
                    elapsed_us: elapsed_us(t),
                    counters: PhaseCounters::default(),
                });
                cache.trace.emit(|| TraceEvent::MapEnd {
                    ok: false,
                    objective: None,
                    elapsed_us: elapsed_us(start),
                });
                return Err(e);
            }
        };
        stats.placement_time = t.elapsed();
        stats.colocation_hits = hosting.colocation_hits;
        stats.first_fit_fallbacks = hosting.first_fit_fallbacks;
        cache.trace.emit(|| TraceEvent::PhaseEnd {
            phase: Phase::Hosting,
            elapsed_us: elapsed_us(t),
            counters: PhaseCounters {
                colocation_hits: hosting.colocation_hits as u64,
                first_fit_fallbacks: hosting.first_fit_fallbacks as u64,
                ..Default::default()
            },
        });

        // Stage 2: Migration.
        if self.config.migration != MigrationPolicy::Off {
            cache.trace.emit(|| TraceEvent::PhaseStart {
                phase: Phase::Migration,
            });
            let t = Instant::now();
            let delta_evals_before = state.delta_evaluations();
            let full_evals_before = state.full_evaluations();
            let m = match self.config.migration {
                MigrationPolicy::Paper => migration_stage(&mut state),
                MigrationPolicy::Exhaustive => migration_stage_exhaustive(&mut state),
                MigrationPolicy::Off => unreachable!("guarded above"),
            };
            let delta_evaluations = state.delta_evaluations() - delta_evals_before;
            let full_evaluations = state.full_evaluations() - full_evals_before;
            stats.migrations = m.migrations;
            stats.migrations_rejected = m.rejected;
            stats.proposals_evaluated = m.proposals_evaluated;
            stats.delta_evaluations = delta_evaluations as usize;
            stats.full_evaluations = full_evaluations as usize;
            stats.migration_time = t.elapsed();
            cache.trace.emit(|| TraceEvent::PhaseEnd {
                phase: Phase::Migration,
                elapsed_us: elapsed_us(t),
                counters: PhaseCounters {
                    moves_accepted: m.migrations as u64,
                    moves_rejected: m.rejected as u64,
                    proposals_evaluated: m.proposals_evaluated as u64,
                    delta_evaluations,
                    full_evaluations,
                    ..Default::default()
                },
            });
        }

        // Stage 3: Networking.
        cache.trace.emit(|| TraceEvent::PhaseStart {
            phase: Phase::Networking,
        });
        let t = Instant::now();
        let reuses_before = cache.scratch.reuses();
        let net_result = networking_stage_with(&mut state, &links, &self.config.astar(), cache);
        let (routes, net) = match net_result {
            Ok(ok) => ok,
            Err(e) => {
                cache.trace.emit(|| TraceEvent::PhaseEnd {
                    phase: Phase::Networking,
                    elapsed_us: elapsed_us(t),
                    counters: PhaseCounters::default(),
                });
                cache.trace.emit(|| TraceEvent::MapEnd {
                    ok: false,
                    objective: None,
                    elapsed_us: elapsed_us(start),
                });
                return Err(e);
            }
        };
        stats.networking_time = t.elapsed();
        stats.routed_links = net.routed_links;
        stats.intra_host_links = net.intra_host_links;
        stats.astar_expansions = net.search.expanded;
        stats.astar_pushed = net.search.pushed;
        stats.dijkstra_runs = net.dijkstra_runs;
        stats.ar_cache_hits = net.ar_cache_hits;
        stats.scratch_reuses = cache.scratch.reuses() - reuses_before;
        cache.trace.emit(|| TraceEvent::PhaseEnd {
            phase: Phase::Networking,
            elapsed_us: elapsed_us(t),
            counters: PhaseCounters {
                astar_expansions: net.search.expanded as u64,
                astar_pushed: net.search.pushed as u64,
                dijkstra_runs: net.dijkstra_runs as u64,
                cache_hits: net.ar_cache_hits as u64,
                ..Default::default()
            },
        });

        let mapping = Mapping::new(state.into_placement(), routes);
        stats.total_time = start.elapsed();
        let outcome = MapOutcome::new(phys, venv, mapping, stats);
        cache.trace.emit(|| TraceEvent::MapEnd {
            ok: true,
            objective: Some(outcome.objective),
            elapsed_us: elapsed_us(start),
        });
        Ok(outcome)
    }
}

/// Microseconds elapsed since `t`, saturating into the event's `u64`.
pub(crate) fn elapsed_us(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use emumap_graph::generators;
    use emumap_model::{
        validate_mapping, GuestSpec, HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips, StorGb,
        VLinkSpec, VmmOverhead,
    };
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn paper_like_phys() -> PhysicalTopology {
        PhysicalTopology::from_shape(
            &generators::torus2d(3, 4),
            std::iter::repeat(HostSpec::new(
                Mips(2000.0),
                MemMb::from_gb(2),
                StorGb(2000.0),
            )),
            LinkSpec::new(Kbps::from_gbps(1.0), Millis(5.0)),
            VmmOverhead::NONE,
        )
    }

    fn small_venv(guests: usize, links: &[(usize, usize)]) -> VirtualEnvironment {
        let mut venv = VirtualEnvironment::new();
        let ids: Vec<_> = (0..guests)
            .map(|i| {
                venv.add_guest(GuestSpec::new(
                    Mips(50.0 + i as f64),
                    MemMb(192),
                    StorGb(150.0),
                ))
            })
            .collect();
        for (k, &(a, b)) in links.iter().enumerate() {
            venv.add_link(
                ids[a],
                ids[b],
                VLinkSpec::new(Kbps(500.0 + 10.0 * k as f64), Millis(45.0)),
            );
        }
        venv
    }

    #[test]
    fn hmn_produces_a_valid_mapping() {
        let phys = paper_like_phys();
        let venv = small_venv(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 0),
            ],
        );
        let mut rng = SmallRng::seed_from_u64(1);
        let outcome = Hmn::new().map(&phys, &venv, &mut rng).unwrap();
        assert_eq!(validate_mapping(&phys, &venv, &outcome.mapping), Ok(()));
        assert_eq!(outcome.stats.attempts, 1);
        assert_eq!(
            outcome.stats.routed_links + outcome.stats.intra_host_links,
            venv.link_count()
        );
    }

    #[test]
    fn hmn_is_deterministic() {
        let phys = paper_like_phys();
        let venv = small_venv(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let a = Hmn::new()
            .map(&phys, &venv, &mut SmallRng::seed_from_u64(1))
            .unwrap();
        let b = Hmn::new()
            .map(&phys, &venv, &mut SmallRng::seed_from_u64(999))
            .unwrap();
        assert_eq!(a.mapping, b.mapping, "HMN ignores the RNG");
        assert_eq!(a.objective, b.objective);
    }

    #[test]
    fn prune_dominated_keeps_placement_and_validity() {
        // Dominance pruning only discards partial paths that cannot win;
        // the placement (fixed before Networking runs) is untouched and
        // the routed mapping stays valid.
        let phys = paper_like_phys();
        let venv = small_venv(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let baseline = Hmn::new()
            .map(&phys, &venv, &mut SmallRng::seed_from_u64(1))
            .unwrap();
        let pruned = Hmn::with_config(HmnConfig {
            prune_dominated: true,
            ..Default::default()
        })
        .map(&phys, &venv, &mut SmallRng::seed_from_u64(1))
        .unwrap();
        assert_eq!(validate_mapping(&phys, &venv, &pruned.mapping), Ok(()));
        assert_eq!(pruned.mapping.placement(), baseline.mapping.placement());
        assert_eq!(pruned.objective, baseline.objective);
    }

    #[test]
    fn migration_ablation_never_improves_objective() {
        let phys = paper_like_phys();
        let venv = small_venv(
            10,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 8),
                (8, 9),
            ],
        );
        let mut rng = SmallRng::seed_from_u64(1);
        let with = Hmn::new().map(&phys, &venv, &mut rng).unwrap();
        let without = Hmn::with_config(HmnConfig {
            migration: MigrationPolicy::Off,
            ..Default::default()
        })
        .map(&phys, &venv, &mut rng)
        .unwrap();
        assert!(
            with.objective <= without.objective + 1e-9,
            "migration must not worsen the objective ({} vs {})",
            with.objective,
            without.objective
        );
        assert_eq!(without.stats.migrations, 0);
    }

    #[test]
    fn hosting_failure_propagates() {
        // One tiny host cannot take two fat guests.
        let phys = PhysicalTopology::from_shape(
            &generators::line(1),
            std::iter::once(HostSpec::new(Mips(1000.0), MemMb(256), StorGb(100.0))),
            LinkSpec::new(Kbps(1000.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(200), StorGb(1.0)));
        let b = venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(200), StorGb(1.0)));
        venv.add_link(a, b, VLinkSpec::new(Kbps(1.0), Millis(60.0)));
        let err = Hmn::new()
            .map(&phys, &venv, &mut SmallRng::seed_from_u64(1))
            .unwrap_err();
        assert!(matches!(err, MapError::HostingFailed { .. }));
    }

    #[test]
    fn networking_failure_propagates() {
        // Two hosts, narrow link, virtual link demands more than capacity;
        // guests can't co-locate (memory).
        let phys = PhysicalTopology::from_shape(
            &generators::line(2),
            std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(256), StorGb(100.0))),
            LinkSpec::new(Kbps(10.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(200), StorGb(1.0)));
        let b = venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(200), StorGb(1.0)));
        venv.add_link(a, b, VLinkSpec::new(Kbps(100.0), Millis(60.0)));
        let err = Hmn::new()
            .map(&phys, &venv, &mut SmallRng::seed_from_u64(1))
            .unwrap_err();
        assert!(matches!(err, MapError::NetworkingFailed { .. }));
    }

    #[test]
    fn colocation_rescues_heavy_links_that_exceed_physical_capacity() {
        // §5.2's argument for Hosting: a virtual link demanding MORE than
        // any physical link can still be mapped by co-locating its guests.
        let phys = PhysicalTopology::from_shape(
            &generators::line(2),
            std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(4096), StorGb(1000.0))),
            LinkSpec::new(Kbps(100.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(64), StorGb(1.0)));
        let b = venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(64), StorGb(1.0)));
        // 10x the physical link capacity.
        venv.add_link(a, b, VLinkSpec::new(Kbps(1000.0), Millis(60.0)));
        // Unconnected filler guests give the Migration stage something to
        // balance with, so it has no reason to split the heavy pair (its
        // candidate selection prefers guests with zero co-located
        // bandwidth).
        for _ in 0..2 {
            venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(64), StorGb(1.0)));
        }
        let outcome = Hmn::new()
            .map(&phys, &venv, &mut SmallRng::seed_from_u64(1))
            .unwrap();
        assert_eq!(outcome.mapping.host_of(a), outcome.mapping.host_of(b));
        assert_eq!(validate_mapping(&phys, &venv, &outcome.mapping), Ok(()));
    }

    #[test]
    fn random_link_order_uses_rng_but_stays_valid() {
        let phys = paper_like_phys();
        let venv = small_venv(8, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)]);
        let cfg = HmnConfig {
            link_order: LinkOrder::Random,
            ..Default::default()
        };
        let outcome = Hmn::with_config(cfg)
            .map(&phys, &venv, &mut SmallRng::seed_from_u64(5))
            .unwrap();
        assert_eq!(validate_mapping(&phys, &venv, &outcome.mapping), Ok(()));
    }
}
