//! Reusable per-worker caches for the routing hot paths.
//!
//! §5.2 of the paper observes that "most part of mapping time is spend in
//! the Networking stage to calculate the shortest path of each host to the
//! link destination". The per-`networking_stage` `HashMap` cache already
//! collapses that to one Dijkstra per distinct destination *per trial* —
//! but a benchmark sweep runs hundreds of trials on the *same* topology,
//! and the `ar[]` tables depend only on link latencies, never on residual
//! bandwidth or the virtual environment. [`ArTables`] promotes the cache
//! to topology lifetime: tables survive across trials and are invalidated
//! only when the topology fingerprint (node count, edge endpoints, latency
//! bit patterns) changes.
//!
//! [`MapCache`] bundles the table cache with the search scratch buffers
//! ([`RouteScratch`], [`DfsScratch`]) into the one state blob a worker
//! thread owns. Apart from the [`Tracer`] (a passive observer), everything
//! here is a pure cache: any sequence of mapper calls produces
//! bit-identical results with a fresh cache, a warm cache, or a cache
//! previously used on a different topology — and the *decision* stream of
//! trace events is equally cache-independent (see `emumap_trace`).

use crate::astar_prune::RouteScratch;
use crate::dfs_routing::DfsScratch;
use emumap_graph::algo::dijkstra_csr;
use emumap_graph::{CsrAdjacency, NodeId};
use emumap_model::{GuestId, PhysicalTopology};
use emumap_trace::Tracer;
use std::collections::HashMap;

/// FNV-1a over the topology features the cached tables depend on.
fn topology_fingerprint(phys: &PhysicalTopology) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    let graph = phys.graph();
    mix(graph.node_count() as u64);
    for e in graph.edge_ids() {
        let (a, b) = graph.endpoints(e);
        mix(a.index() as u64);
        mix(b.index() as u64);
        mix(phys.link(e).lat.value().to_bits());
    }
    h
}

/// Topology-lifetime cache of per-destination Dijkstra tables plus the CSR
/// adjacency snapshot the searches iterate.
///
/// Two table families are kept:
///
/// * `ar` — latency-to-destination (the admissible `ar[]` lower bound of
///   the paper's Algorithm 1), used by A\*Prune and the KSP early-exit;
/// * `hops` — unit-cost hop counts, used to bias the naive DFS router of
///   the R / RA / HS baselines.
///
/// Both depend only on the topology (latencies / connectivity), so they are
/// keyed by a fingerprint and survive across trials, mappers, and virtual
/// environments on the same cluster.
#[derive(Debug, Default)]
pub struct ArTables {
    /// Generation of the topology the tables were built for (0 = unset).
    /// Matching this is the O(1) fast path of [`prepare`](Self::prepare);
    /// the content fingerprint below is the O(E) fallback that still
    /// keeps tables when an identical topology arrives under a new
    /// generation (e.g. a re-deserialized file).
    generation: u64,
    fingerprint: u64,
    prepared: bool,
    csr: CsrAdjacency,
    ar: HashMap<NodeId, Vec<f64>>,
    hops: HashMap<NodeId, Vec<f64>>,
    dijkstra_runs: usize,
    hits: usize,
}

impl ArTables {
    /// Empty cache; first [`prepare`](Self::prepare) populates the CSR view.
    pub fn new() -> Self {
        ArTables::default()
    }

    /// Binds the cache to `phys`, rebuilding the CSR snapshot and dropping
    /// all tables if the topology changed since the last call. Returns
    /// `true` when the cached tables were kept (same topology).
    pub fn prepare(&mut self, phys: &PhysicalTopology) -> bool {
        // O(1) fast path: same topology value (or a clone of it) as last
        // time. Every trial of a benchmark sweep after the first takes
        // this branch instead of re-hashing all edges.
        if self.prepared && phys.generation() == self.generation {
            return true;
        }
        let fp = topology_fingerprint(phys);
        if self.prepared && fp == self.fingerprint {
            // Different value, identical content (e.g. re-parsed JSON):
            // keep the tables and adopt the new generation.
            self.generation = phys.generation();
            return true;
        }
        self.generation = phys.generation();
        self.fingerprint = fp;
        self.prepared = true;
        self.csr = phys.graph().to_csr();
        self.ar.clear();
        self.hops.clear();
        false
    }

    /// The latency `ar[]` table rooted at `dest` together with the CSR
    /// snapshot, both under one borrow (callers need them simultaneously
    /// for [`astar_prune_with`](crate::astar_prune_with)).
    ///
    /// Must be called after [`prepare`](Self::prepare) on the same `phys`.
    pub fn ar_and_csr(&mut self, phys: &PhysicalTopology, dest: NodeId) -> (&[f64], &CsrAdjacency) {
        debug_assert!(self.prepared, "call ArTables::prepare first");
        if !self.ar.contains_key(&dest) {
            self.dijkstra_runs += 1;
            let table = dijkstra_csr(phys.graph(), &self.csr, dest, |_, link| link.lat.value())
                .distances()
                .to_vec();
            self.ar.insert(dest, table);
        } else {
            self.hits += 1;
        }
        (self.ar.get(&dest).expect("just inserted"), &self.csr)
    }

    /// Unit-cost hop-count table rooted at `dest` (the DFS neighbor-order
    /// bias of the baselines). Same caching discipline as
    /// [`ar_and_csr`](Self::ar_and_csr).
    pub fn hops(&mut self, phys: &PhysicalTopology, dest: NodeId) -> &[f64] {
        debug_assert!(self.prepared, "call ArTables::prepare first");
        if !self.hops.contains_key(&dest) {
            self.dijkstra_runs += 1;
            let table = dijkstra_csr(phys.graph(), &self.csr, dest, |_, _| 1.0)
                .distances()
                .to_vec();
            self.hops.insert(dest, table);
        } else {
            self.hits += 1;
        }
        self.hops.get(&dest).expect("just inserted")
    }

    /// Like [`hops`](Self::hops) but also hands back the CSR snapshot
    /// under the same borrow (the DFS baselines route through it).
    pub fn hops_and_csr(
        &mut self,
        phys: &PhysicalTopology,
        dest: NodeId,
    ) -> (&[f64], &CsrAdjacency) {
        debug_assert!(self.prepared, "call ArTables::prepare first");
        if !self.hops.contains_key(&dest) {
            self.dijkstra_runs += 1;
            let table = dijkstra_csr(phys.graph(), &self.csr, dest, |_, _| 1.0)
                .distances()
                .to_vec();
            self.hops.insert(dest, table);
        } else {
            self.hits += 1;
        }
        (self.hops.get(&dest).expect("just inserted"), &self.csr)
    }

    /// The CSR adjacency snapshot of the prepared topology.
    pub fn csr(&self) -> &CsrAdjacency {
        &self.csr
    }

    /// Total Dijkstra runs since construction (both table families).
    pub fn dijkstra_runs(&self) -> usize {
        self.dijkstra_runs
    }

    /// Table lookups answered from cache since construction.
    pub fn hits(&self) -> usize {
        self.hits
    }
}

/// Reusable buffers for the annealer's search loop: the host list the
/// proposal sampler indexes, the best-placement snapshot, and the
/// displaced-guest list of the final restore. With these owned by the
/// [`MapCache`], the steady-state annealing loop performs no allocations
/// at all — proposals are evaluated as accumulator deltas and the only
/// vectors involved are these, refilled in place.
#[derive(Debug, Default)]
pub struct AnnealScratch {
    /// Host ids in `phys.hosts()` order (proposal sampling).
    pub(crate) hosts: Vec<NodeId>,
    /// Best placement visited, dense by guest index.
    pub(crate) best: Vec<NodeId>,
    /// Guests whose final host differs from the best snapshot (restore).
    pub(crate) displaced: Vec<GuestId>,
    warm: bool,
    reuses: usize,
}

impl AnnealScratch {
    /// Fresh, cold scratch.
    pub fn new() -> Self {
        AnnealScratch::default()
    }

    /// Annealing runs that started on already-warm buffers (every use
    /// after the first). Surfaced in `MapStats::scratch_reuses`.
    pub fn reuses(&self) -> usize {
        self.reuses
    }

    /// Clears the buffers for a new run, keeping their capacity.
    pub(crate) fn begin(&mut self) {
        if self.warm {
            self.reuses += 1;
        }
        self.warm = true;
        self.hosts.clear();
        self.best.clear();
        self.displaced.clear();
    }
}

/// Reusable buffers for the randomized-rounding mapper's fractional
/// solve + rounding loop. The big flat buffers (the guests × hosts
/// distribution matrix, price and load vectors, the per-iteration cost
/// row) keep their capacity across runs so the steady-state LP loop
/// allocates only inside Dijkstra table builds — the same discipline as
/// [`ArTables`].
#[derive(Debug, Default)]
pub struct RoundingScratch {
    /// The fractional placement `x[g][h]` under refinement.
    pub(crate) frac: emumap_model::FractionalPlacement,
    /// Expected per-host resource loads induced by `frac`.
    pub(crate) loads: emumap_model::ExpectedLoads,
    /// Multiplicative-weights congestion price per host (dense host index).
    pub(crate) host_prices: Vec<f64>,
    /// Congestion price per physical edge (dense edge index).
    pub(crate) edge_prices: Vec<f64>,
    /// Expected bandwidth utilization per physical edge this iteration.
    pub(crate) edge_loads: Vec<f64>,
    /// Per-guest normalized worst-resource demand per host (guests × hosts).
    pub(crate) fit_cost: Vec<f64>,
    /// Current mode (argmax) host per guest, dense host index.
    pub(crate) modes: Vec<usize>,
    /// One cost row (hosts long), rebuilt per guest per iteration.
    pub(crate) cost_row: Vec<f64>,
    /// Priced-Dijkstra tables rooted at this iteration's mode hosts.
    pub(crate) priced: Vec<(NodeId, emumap_graph::algo::DijkstraResult)>,
    /// Sampled placement of the current rounding attempt, by guest index.
    pub(crate) sampled: Vec<NodeId>,
    warm: bool,
    reuses: usize,
}

impl RoundingScratch {
    /// Fresh, cold scratch.
    pub fn new() -> Self {
        RoundingScratch::default()
    }

    /// Rounding runs that started on already-warm buffers (every use
    /// after the first). Surfaced in `MapStats::scratch_reuses`.
    pub fn reuses(&self) -> usize {
        self.reuses
    }

    /// Clears the buffers for a new run, keeping their capacity.
    pub(crate) fn begin(&mut self) {
        if self.warm {
            self.reuses += 1;
        }
        self.warm = true;
        self.host_prices.clear();
        self.edge_prices.clear();
        self.edge_loads.clear();
        self.fit_cost.clear();
        self.modes.clear();
        self.cost_row.clear();
        self.priced.clear();
        self.sampled.clear();
    }
}

/// Everything a worker reuses across mapper calls: topology tables plus
/// the A\*Prune and DFS scratch buffers.
///
/// Pass one per thread to [`Mapper::map_with_cache`](crate::Mapper::
/// map_with_cache); results are identical to the cache-free
/// [`Mapper::map`](crate::Mapper::map) for any cache history.
///
/// The epoch-parallel exact oracle leans on the same guarantee from the
/// other side: every worker owns a private `MapCache` (so the Lagrangian
/// multipliers it warm-starts from are exactly the ones handed to it per
/// subtree, never another worker's), and *because* caches are
/// semantically invisible the per-node results cannot depend on which
/// worker's cache computed them — one half of the engine's
/// thread-count-invariance argument (DESIGN.md §5.7).
#[derive(Debug, Default)]
pub struct MapCache {
    /// Cross-trial Dijkstra tables + CSR adjacency.
    pub topo: ArTables,
    /// A\*Prune arena/heap/on-path buffers.
    pub scratch: RouteScratch,
    /// Naive-DFS stack and visited buffers.
    pub dfs: DfsScratch,
    /// Annealing-loop buffers (host list, best placement, restore list).
    pub anneal: AnnealScratch,
    /// Randomized-rounding buffers (fractional matrix, prices, loads).
    pub rounding: RoundingScratch,
    /// Lagrangian-bound buffers (priced tables, multipliers, gradients)
    /// for the exact oracle.
    pub lagrangian: crate::lagrangian::LagrangianScratch,
    /// Structured-event tracer; disabled (zero-cost) by default. Attach a
    /// sink with [`Tracer::new`] to stream [`emumap_trace::TraceEvent`]s
    /// from every mapper run through this cache.
    pub trace: Tracer,
}

impl MapCache {
    /// Fresh, cold cache.
    pub fn new() -> Self {
        MapCache::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emumap_graph::generators;
    use emumap_model::{HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips, StorGb, VmmOverhead};

    fn phys_line(n: usize, lat: f64) -> PhysicalTopology {
        PhysicalTopology::from_shape(
            &generators::line(n),
            std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(4096), StorGb(1000.0))),
            LinkSpec::new(Kbps(1000.0), Millis(lat)),
            VmmOverhead::NONE,
        )
    }

    #[test]
    fn tables_survive_repeated_prepare_on_same_topology() {
        let phys = phys_line(4, 5.0);
        let mut t = ArTables::new();
        assert!(!t.prepare(&phys), "first prepare is a rebuild");
        let dest = phys.hosts()[3];
        let (ar, _) = t.ar_and_csr(&phys, dest);
        assert_eq!(ar[phys.hosts()[0].index()], 15.0);
        assert_eq!(t.dijkstra_runs(), 1);

        assert!(t.prepare(&phys), "same topology keeps tables");
        let _ = t.ar_and_csr(&phys, dest);
        assert_eq!(t.dijkstra_runs(), 1, "second lookup is a hit");
        assert_eq!(t.hits(), 1);
    }

    #[test]
    fn equal_content_under_new_generation_keeps_tables() {
        let phys = phys_line(4, 5.0);
        let mut t = ArTables::new();
        t.prepare(&phys);
        let _ = t.ar_and_csr(&phys, phys.hosts()[3]);
        // Round-trip through JSON: same content, fresh generation.
        let json = serde_json::to_string(&phys).unwrap();
        let reparsed: PhysicalTopology = serde_json::from_str(&json).unwrap();
        assert_ne!(reparsed.generation(), phys.generation());
        assert!(t.prepare(&reparsed), "fingerprint fallback keeps tables");
        let _ = t.ar_and_csr(&reparsed, reparsed.hosts()[3]);
        assert_eq!(t.dijkstra_runs(), 1);
        // And the adopted generation now short-circuits.
        assert!(t.prepare(&reparsed));
    }

    #[test]
    fn topology_change_invalidates_tables() {
        let a = phys_line(4, 5.0);
        let b = phys_line(4, 7.0); // same shape, different latencies
        let mut t = ArTables::new();
        t.prepare(&a);
        let (ar, _) = t.ar_and_csr(&a, a.hosts()[3]);
        assert_eq!(ar[a.hosts()[0].index()], 15.0);
        assert!(!t.prepare(&b), "latency change must rebuild");
        let (ar, _) = t.ar_and_csr(&b, b.hosts()[3]);
        assert_eq!(ar[b.hosts()[0].index()], 21.0);
    }

    #[test]
    fn hop_tables_use_unit_costs() {
        let phys = phys_line(5, 3.0);
        let mut t = ArTables::new();
        t.prepare(&phys);
        let hops = t.hops(&phys, phys.hosts()[4]);
        assert_eq!(hops[phys.hosts()[0].index()], 4.0);
        assert_eq!(hops[phys.hosts()[4].index()], 0.0);
    }

    #[test]
    fn ar_and_hops_are_cached_independently() {
        let phys = phys_line(3, 5.0);
        let mut t = ArTables::new();
        t.prepare(&phys);
        let dest = phys.hosts()[2];
        let _ = t.ar_and_csr(&phys, dest);
        let _ = t.hops(&phys, dest);
        assert_eq!(t.dijkstra_runs(), 2, "latency and hop tables are distinct");
        let _ = t.ar_and_csr(&phys, dest);
        let _ = t.hops(&phys, dest);
        assert_eq!(t.dijkstra_runs(), 2);
        assert_eq!(t.hits(), 2);
    }
}
