//! The evaluation's baseline mappers (§5):
//!
//! * [`RandomDfs`] (**R**) — "a mapping algorithm that randomly tries to
//!   map the guests to hosts and for each link in `E_v` applies a
//!   depth-first search algorithm to find a path". Both placement and
//!   routing are retried on failure ("in the Random approach, both mapping
//!   of guests and of virtual links were retried").
//! * [`RandomAStar`] (**RA**) — random placement, A\*Prune routing.
//! * [`HostingDfs`] (**HS**) — HMN's Hosting stage for placement (run
//!   once — it is deterministic), DFS routing with retries ("in [HS] only
//!   the last one were retried; so, if the initial mapping of guests did
//!   not allow a mapping of links, this heuristic fails").
//!
//! ### Retry budget
//!
//! The paper's random algorithm gives up "after 100000 tries". Replaying
//! 100 000 *complete* remap attempts of a 2000-guest/20000-link scenario is
//! minutes of wall-clock per failing run and failing runs dominate Table 2
//! (322/480 for R on the torus), so the default budget here is
//! [`DEFAULT_MAX_ATTEMPTS`] = 200 complete attempts. This preserves the
//! failure *shape*: success probability per attempt is roughly constant, so
//! a scenario that survives 200 independent attempts without a single
//! success is overwhelmingly likely to survive 100 000 too (and the
//! borderline region is narrow). The budget is a public field; pass
//! `100_000` to reproduce the paper's bound literally.

use crate::astar_prune::AStarPruneConfig;
use crate::cache::MapCache;
use crate::dfs_routing::naive_dfs_route_csr;
use crate::error::MapError;
use crate::hosting::{hosting_stage, links_by_descending_bw};
use crate::mapper::{MapOutcome, MapStats, Mapper};
use crate::networking::networking_stage_with;
use crate::state::PlacementState;
use emumap_graph::NodeId;
use emumap_model::{Mapping, PhysicalTopology, Route, VirtualEnvironment};
use emumap_trace::{LinkVerdict, Phase, PhaseCounters, TraceEvent};
use rand::seq::SliceRandom;
use rand::{Rng, RngCore};
use std::time::Instant;

/// Emits the `MapStart` event shared by all three baselines.
fn emit_map_start(cache: &mut MapCache, name: &str, venv: &VirtualEnvironment) {
    cache.trace.emit(|| TraceEvent::MapStart {
        mapper: name.to_string(),
        guests: venv.guest_count() as u64,
        links: venv.link_count() as u64,
    });
}

/// Default complete-attempt budget for the retrying baselines (see module
/// docs for why this is not the paper's literal 100 000).
pub const DEFAULT_MAX_ATTEMPTS: usize = 200;

/// Places every guest on a uniformly random host among those that fit it.
/// Returns `Err` with the first unplaceable guest.
fn random_placement(state: &mut PlacementState<'_>, rng: &mut dyn RngCore) -> Result<(), MapError> {
    let venv = state.venv();
    let hosts: Vec<NodeId> = state.phys().hosts().to_vec();
    let mut candidates: Vec<NodeId> = Vec::with_capacity(hosts.len());
    for g in venv.guest_ids() {
        candidates.clear();
        candidates.extend(hosts.iter().copied().filter(|&h| state.fits(g, h)));
        if candidates.is_empty() {
            return Err(MapError::HostingFailed { guest: g });
        }
        let pick = candidates[rng.gen_range(0..candidates.len())];
        state.assign(g, pick).expect("candidate verified");
    }
    Ok(())
}

/// Routes every link with the naive DFS, committing bandwidth. Links are
/// processed in a random order (the baseline has no ordering insight).
/// On failure, all committed routes are released so the state can be
/// reused. Hop-distance tables come from the shared [`MapCache`]
/// (mirroring the Networking stage's `ar[]` cache), so they survive not
/// only the routing pass but every retry attempt and every later trial on
/// the same topology. Dijkstra consumes no randomness, so the caching is
/// invisible to the RNG stream and the mapped outcomes.
fn dfs_routing(
    state: &mut PlacementState<'_>,
    rng: &mut dyn RngCore,
    cache: &mut MapCache,
) -> Result<(Vec<Route>, usize, usize), MapError> {
    let venv = state.venv();
    let phys = state.phys();
    let mut order: Vec<_> = venv.link_ids().collect();
    order.shuffle(rng);
    let mut routes = vec![Route::intra_host(); venv.link_count()];
    let mut committed: Vec<(Vec<emumap_graph::EdgeId>, emumap_model::Kbps)> = Vec::new();
    let mut routed = 0;
    let mut intra = 0;
    let MapCache {
        topo, dfs, trace, ..
    } = cache;
    topo.prepare(phys);

    for l in order {
        let (vs, vd) = venv.link_endpoints(l);
        let hs = state.host_of(vs).expect("complete");
        let hd = state.host_of(vd).expect("complete");
        if hs == hd {
            intra += 1;
            trace.emit(|| TraceEvent::LinkIntraHost {
                link: l.index() as u64,
            });
            continue;
        }
        let spec = *venv.link(l);
        let (hops, csr) = topo.hops_and_csr(phys, hd);
        match naive_dfs_route_csr(
            phys,
            csr,
            state.residual(),
            hs,
            hd,
            spec.bw,
            spec.lat,
            hops,
            rng,
            dfs,
        ) {
            Some(edges) => {
                trace.emit(|| TraceEvent::LinkRouted {
                    link: l.index() as u64,
                    hops: edges.len() as u64,
                });
                state.residual_mut().commit_route(&edges, spec.bw);
                committed.push((edges.clone(), spec.bw));
                routes[l.index()] = Route::new(edges);
                routed += 1;
            }
            None => {
                // A DFS miss is no infeasibility proof (the walk is
                // heuristic), and the baselines retry hundreds of times —
                // running the max-flow diagnosis per miss would swamp the
                // trace, so the verdict is always `PossiblyRoutable` here.
                trace.emit(|| TraceEvent::LinkFailed {
                    link: l.index() as u64,
                    verdict: LinkVerdict::PossiblyRoutable,
                });
                for (edges, bw) in committed {
                    state.residual_mut().release_route(&edges, bw);
                }
                return Err(MapError::NetworkingFailed { link: l });
            }
        }
    }
    Ok((routes, routed, intra))
}

/// **R** — random placement + DFS routing, whole attempt retried.
#[derive(Clone, Copy, Debug)]
pub struct RandomDfs {
    /// Complete attempts before giving up.
    pub max_attempts: usize,
}

impl Default for RandomDfs {
    fn default() -> Self {
        RandomDfs {
            max_attempts: DEFAULT_MAX_ATTEMPTS,
        }
    }
}

impl Mapper for RandomDfs {
    fn name(&self) -> &str {
        "R"
    }

    fn map(
        &self,
        phys: &PhysicalTopology,
        venv: &VirtualEnvironment,
        rng: &mut dyn RngCore,
    ) -> Result<MapOutcome, MapError> {
        self.map_with_cache(phys, venv, rng, &mut MapCache::new())
    }

    fn map_with_cache(
        &self,
        phys: &PhysicalTopology,
        venv: &VirtualEnvironment,
        rng: &mut dyn RngCore,
        cache: &mut MapCache,
    ) -> Result<MapOutcome, MapError> {
        let start = Instant::now();
        let runs_before = cache.topo.dijkstra_runs();
        let hits_before = cache.topo.hits();
        let reuses_before = cache.dfs.reuses();
        let backtracks_before = cache.dfs.backtracks();
        emit_map_start(cache, "R", venv);
        let mut state = PlacementState::new(phys, venv);
        for attempt in 1..=self.max_attempts {
            state.reset();
            let t_place = Instant::now();
            if random_placement(&mut state, rng).is_err() {
                continue;
            }
            let placement_time = t_place.elapsed();
            let t_route = Instant::now();
            match dfs_routing(&mut state, rng, cache) {
                Ok((routes, routed, intra)) => {
                    let stats = MapStats {
                        attempts: attempt,
                        routed_links: routed,
                        intra_host_links: intra,
                        dfs_backtracks: cache.dfs.backtracks() - backtracks_before,
                        hop_tables: cache.topo.dijkstra_runs() - runs_before,
                        ar_cache_hits: cache.topo.hits() - hits_before,
                        scratch_reuses: cache.dfs.reuses() - reuses_before,
                        placement_time,
                        networking_time: t_route.elapsed(),
                        total_time: start.elapsed(),
                        ..Default::default()
                    };
                    let mapping = Mapping::new(state.into_placement(), routes);
                    let outcome = MapOutcome::new(phys, venv, mapping, stats);
                    cache.trace.emit(|| TraceEvent::MapEnd {
                        ok: true,
                        objective: Some(outcome.objective),
                        elapsed_us: crate::hmn::elapsed_us(start),
                    });
                    return Ok(outcome);
                }
                Err(_) => continue,
            }
        }
        cache.trace.emit(|| TraceEvent::MapEnd {
            ok: false,
            objective: None,
            elapsed_us: crate::hmn::elapsed_us(start),
        });
        Err(MapError::RetriesExhausted {
            attempts: self.max_attempts,
        })
    }
}

/// **RA** — random placement + A\*Prune routing, whole attempt retried.
#[derive(Clone, Copy, Debug)]
pub struct RandomAStar {
    /// Complete attempts before giving up.
    pub max_attempts: usize,
    /// A\*Prune configuration (default: the paper's).
    pub astar: AStarPruneConfig,
}

impl Default for RandomAStar {
    fn default() -> Self {
        RandomAStar {
            max_attempts: DEFAULT_MAX_ATTEMPTS,
            astar: AStarPruneConfig::default(),
        }
    }
}

impl Mapper for RandomAStar {
    fn name(&self) -> &str {
        "RA"
    }

    fn map(
        &self,
        phys: &PhysicalTopology,
        venv: &VirtualEnvironment,
        rng: &mut dyn RngCore,
    ) -> Result<MapOutcome, MapError> {
        self.map_with_cache(phys, venv, rng, &mut MapCache::new())
    }

    fn map_with_cache(
        &self,
        phys: &PhysicalTopology,
        venv: &VirtualEnvironment,
        rng: &mut dyn RngCore,
        cache: &mut MapCache,
    ) -> Result<MapOutcome, MapError> {
        let start = Instant::now();
        let runs_before = cache.topo.dijkstra_runs();
        let hits_before = cache.topo.hits();
        let reuses_before = cache.scratch.reuses();
        emit_map_start(cache, "RA", venv);
        let links = links_by_descending_bw(venv);
        let mut state = PlacementState::new(phys, venv);
        for attempt in 1..=self.max_attempts {
            state.reset();
            let t_place = Instant::now();
            if random_placement(&mut state, rng).is_err() {
                continue;
            }
            let placement_time = t_place.elapsed();
            let t_route = Instant::now();
            match networking_stage_with(&mut state, &links, &self.astar, cache) {
                Ok((routes, net)) => {
                    let stats = MapStats {
                        attempts: attempt,
                        routed_links: net.routed_links,
                        intra_host_links: net.intra_host_links,
                        astar_expansions: net.search.expanded,
                        astar_pushed: net.search.pushed,
                        dijkstra_runs: cache.topo.dijkstra_runs() - runs_before,
                        ar_cache_hits: cache.topo.hits() - hits_before,
                        scratch_reuses: cache.scratch.reuses() - reuses_before,
                        placement_time,
                        networking_time: t_route.elapsed(),
                        total_time: start.elapsed(),
                        ..Default::default()
                    };
                    let mapping = Mapping::new(state.into_placement(), routes);
                    let outcome = MapOutcome::new(phys, venv, mapping, stats);
                    cache.trace.emit(|| TraceEvent::MapEnd {
                        ok: true,
                        objective: Some(outcome.objective),
                        elapsed_us: crate::hmn::elapsed_us(start),
                    });
                    return Ok(outcome);
                }
                Err(_) => continue,
            }
        }
        cache.trace.emit(|| TraceEvent::MapEnd {
            ok: false,
            objective: None,
            elapsed_us: crate::hmn::elapsed_us(start),
        });
        Err(MapError::RetriesExhausted {
            attempts: self.max_attempts,
        })
    }
}

/// **HS** — HMN Hosting for placement (once), DFS routing with retries.
#[derive(Clone, Copy, Debug)]
pub struct HostingDfs {
    /// Routing attempts before giving up (placement is fixed).
    pub max_attempts: usize,
}

impl Default for HostingDfs {
    fn default() -> Self {
        HostingDfs {
            max_attempts: DEFAULT_MAX_ATTEMPTS,
        }
    }
}

impl Mapper for HostingDfs {
    fn name(&self) -> &str {
        "HS"
    }

    fn map(
        &self,
        phys: &PhysicalTopology,
        venv: &VirtualEnvironment,
        rng: &mut dyn RngCore,
    ) -> Result<MapOutcome, MapError> {
        self.map_with_cache(phys, venv, rng, &mut MapCache::new())
    }

    fn map_with_cache(
        &self,
        phys: &PhysicalTopology,
        venv: &VirtualEnvironment,
        rng: &mut dyn RngCore,
        cache: &mut MapCache,
    ) -> Result<MapOutcome, MapError> {
        let start = Instant::now();
        let runs_before = cache.topo.dijkstra_runs();
        let hits_before = cache.topo.hits();
        let reuses_before = cache.dfs.reuses();
        let backtracks_before = cache.dfs.backtracks();
        emit_map_start(cache, "HS", venv);
        let links = links_by_descending_bw(venv);
        let mut state = PlacementState::new(phys, venv);
        cache.trace.emit(|| TraceEvent::PhaseStart {
            phase: Phase::Hosting,
        });
        let t_place = Instant::now();
        let hosting = match hosting_stage(&mut state, &links) {
            Ok(h) => h,
            Err(e) => {
                // Close the open phase even on failure: trace consumers
                // rely on PhaseStart/PhaseEnd always being bracketed.
                cache.trace.emit(|| TraceEvent::PhaseEnd {
                    phase: Phase::Hosting,
                    elapsed_us: crate::hmn::elapsed_us(t_place),
                    counters: PhaseCounters::default(),
                });
                cache.trace.emit(|| TraceEvent::MapEnd {
                    ok: false,
                    objective: None,
                    elapsed_us: crate::hmn::elapsed_us(start),
                });
                return Err(e);
            }
        };
        let placement_time = t_place.elapsed();
        cache.trace.emit(|| TraceEvent::PhaseEnd {
            phase: Phase::Hosting,
            elapsed_us: crate::hmn::elapsed_us(t_place),
            counters: PhaseCounters {
                colocation_hits: hosting.colocation_hits as u64,
                first_fit_fallbacks: hosting.first_fit_fallbacks as u64,
                ..Default::default()
            },
        });

        let t_route = Instant::now();
        for attempt in 1..=self.max_attempts {
            match dfs_routing(&mut state, rng, cache) {
                Ok((routes, routed, intra)) => {
                    let stats = MapStats {
                        attempts: attempt,
                        colocation_hits: hosting.colocation_hits,
                        first_fit_fallbacks: hosting.first_fit_fallbacks,
                        routed_links: routed,
                        intra_host_links: intra,
                        dfs_backtracks: cache.dfs.backtracks() - backtracks_before,
                        hop_tables: cache.topo.dijkstra_runs() - runs_before,
                        ar_cache_hits: cache.topo.hits() - hits_before,
                        scratch_reuses: cache.dfs.reuses() - reuses_before,
                        placement_time,
                        networking_time: t_route.elapsed(),
                        total_time: start.elapsed(),
                        ..Default::default()
                    };
                    let mapping = Mapping::new(state.into_placement(), routes);
                    let outcome = MapOutcome::new(phys, venv, mapping, stats);
                    cache.trace.emit(|| TraceEvent::MapEnd {
                        ok: true,
                        objective: Some(outcome.objective),
                        elapsed_us: crate::hmn::elapsed_us(start),
                    });
                    return Ok(outcome);
                }
                Err(_) => continue, // dfs_routing released its commitments
            }
        }
        cache.trace.emit(|| TraceEvent::MapEnd {
            ok: false,
            objective: None,
            elapsed_us: crate::hmn::elapsed_us(start),
        });
        Err(MapError::RetriesExhausted {
            attempts: self.max_attempts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emumap_graph::generators;
    use emumap_model::{
        validate_mapping, GuestSpec, HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips, StorGb,
        VLinkSpec, VmmOverhead,
    };
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn phys() -> PhysicalTopology {
        PhysicalTopology::from_shape(
            &generators::torus2d(3, 4),
            std::iter::repeat(HostSpec::new(
                Mips(2000.0),
                MemMb::from_gb(2),
                StorGb(2000.0),
            )),
            LinkSpec::new(Kbps::from_gbps(1.0), Millis(5.0)),
            VmmOverhead::NONE,
        )
    }

    fn venv(n: usize) -> VirtualEnvironment {
        let mut v = VirtualEnvironment::new();
        let ids: Vec<_> = (0..n)
            .map(|_| v.add_guest(GuestSpec::new(Mips(75.0), MemMb(192), StorGb(150.0))))
            .collect();
        for w in ids.windows(2) {
            v.add_link(w[0], w[1], VLinkSpec::new(Kbps(750.0), Millis(45.0)));
        }
        v
    }

    #[test]
    fn all_three_baselines_produce_valid_mappings() {
        let p = phys();
        let v = venv(10);
        let mappers: Vec<Box<dyn Mapper>> = vec![
            Box::new(RandomDfs::default()),
            Box::new(RandomAStar::default()),
            Box::new(HostingDfs::default()),
        ];
        for m in &mappers {
            let mut rng = SmallRng::seed_from_u64(7);
            let out = m
                .map(&p, &v, &mut rng)
                .unwrap_or_else(|e| panic!("{} failed: {e}", m.name()));
            assert_eq!(
                validate_mapping(&p, &v, &out.mapping),
                Ok(()),
                "{} produced an invalid mapping",
                m.name()
            );
        }
    }

    #[test]
    fn random_mappers_vary_with_seed() {
        let p = phys();
        let v = venv(10);
        let m = RandomDfs::default();
        let a = m.map(&p, &v, &mut SmallRng::seed_from_u64(1)).unwrap();
        let b = m.map(&p, &v, &mut SmallRng::seed_from_u64(2)).unwrap();
        // Not guaranteed in principle, but with 12 hosts and 10 guests two
        // seeds colliding on the identical placement is (1/12)^10-ish.
        assert_ne!(a.mapping.placement(), b.mapping.placement());
    }

    #[test]
    fn random_is_reproducible_per_seed() {
        let p = phys();
        let v = venv(10);
        let m = RandomAStar::default();
        let a = m.map(&p, &v, &mut SmallRng::seed_from_u64(3)).unwrap();
        let b = m.map(&p, &v, &mut SmallRng::seed_from_u64(3)).unwrap();
        assert_eq!(a.mapping, b.mapping);
    }

    #[test]
    fn warm_cache_reproduces_cold_outcomes_for_all_baselines() {
        // The cache must be invisible: same seed, same mapping, whether the
        // caches/scratch are cold, warm from the same trial, or warm from a
        // different mapper's trials.
        let p = phys();
        let v = venv(10);
        let mut cache = MapCache::new();
        let mappers: Vec<Box<dyn Mapper>> = vec![
            Box::new(RandomDfs::default()),
            Box::new(RandomAStar::default()),
            Box::new(HostingDfs::default()),
        ];
        for m in &mappers {
            let cold = m.map(&p, &v, &mut SmallRng::seed_from_u64(7)).unwrap();
            for round in 0..2 {
                let warm = m
                    .map_with_cache(&p, &v, &mut SmallRng::seed_from_u64(7), &mut cache)
                    .unwrap();
                assert_eq!(cold.mapping, warm.mapping, "{} round {round}", m.name());
                assert_eq!(cold.objective.to_bits(), warm.objective.to_bits());
            }
        }
        assert!(
            cache.topo.hits() > 0,
            "second rounds must hit the shared tables"
        );
    }

    #[test]
    fn impossible_scenario_exhausts_retries() {
        // Guests that fit nowhere.
        let p = phys();
        let mut v = VirtualEnvironment::new();
        let a = v.add_guest(GuestSpec::new(Mips(1.0), MemMb::from_gb(100), StorGb(1.0)));
        let b = v.add_guest(GuestSpec::new(Mips(1.0), MemMb(1), StorGb(1.0)));
        v.add_link(a, b, VLinkSpec::new(Kbps(1.0), Millis(60.0)));
        let m = RandomDfs { max_attempts: 5 };
        let err = m.map(&p, &v, &mut SmallRng::seed_from_u64(1)).unwrap_err();
        assert_eq!(err, MapError::RetriesExhausted { attempts: 5 });
    }

    #[test]
    fn hosting_failure_fails_hs_without_retries() {
        // HS does not retry placement: an impossible hosting fails
        // immediately with HostingFailed, not RetriesExhausted.
        let p = phys();
        let mut v = VirtualEnvironment::new();
        let a = v.add_guest(GuestSpec::new(Mips(1.0), MemMb::from_gb(100), StorGb(1.0)));
        let b = v.add_guest(GuestSpec::new(Mips(1.0), MemMb(1), StorGb(1.0)));
        v.add_link(a, b, VLinkSpec::new(Kbps(1.0), Millis(60.0)));
        let err = HostingDfs::default()
            .map(&p, &v, &mut SmallRng::seed_from_u64(1))
            .unwrap_err();
        assert!(matches!(err, MapError::HostingFailed { .. }));
    }

    #[test]
    fn ra_attempt_counter_reports_retries() {
        // A scenario RA can map but R-style placement sometimes routes on
        // the first try; just assert the counter is within budget and >= 1.
        let p = phys();
        let v = venv(6);
        let out = RandomAStar::default()
            .map(&p, &v, &mut SmallRng::seed_from_u64(11))
            .unwrap();
        assert!(out.stats.attempts >= 1);
        assert!(out.stats.attempts <= DEFAULT_MAX_ATTEMPTS);
    }

    #[test]
    fn released_routes_leave_residuals_clean_after_hs_retry() {
        // Force at least one routing retry by giving HS a tight latency
        // budget on a ring (DFS may wander), then verify the final mapping
        // still validates (a leak of committed bandwidth would surface as
        // a BandwidthExceeded violation on some seed).
        let p = PhysicalTopology::from_shape(
            &generators::ring(8),
            std::iter::repeat(HostSpec::new(Mips(2000.0), MemMb(512), StorGb(500.0))),
            LinkSpec::new(Kbps(2000.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let mut v = VirtualEnvironment::new();
        let ids: Vec<_> = (0..8)
            .map(|_| v.add_guest(GuestSpec::new(Mips(75.0), MemMb(256), StorGb(100.0))))
            .collect();
        for i in 0..8 {
            v.add_link(
                ids[i],
                ids[(i + 1) % 8],
                VLinkSpec::new(Kbps(900.0), Millis(10.0)),
            );
        }
        for seed in 0..10 {
            if let Ok(out) = HostingDfs::default().map(&p, &v, &mut SmallRng::seed_from_u64(seed)) {
                assert_eq!(
                    validate_mapping(&p, &v, &out.mapping),
                    Ok(()),
                    "seed {seed}"
                );
            }
        }
    }
}
