//! The common mapper interface and its outcome/statistics types.

use crate::cache::MapCache;
use crate::error::MapError;
use emumap_model::{objective::mapping_objective, Mapping, PhysicalTopology, VirtualEnvironment};
use rand::RngCore;
use std::time::Duration;

/// Per-run statistics. All fields are best-effort: mappers fill in what
/// applies to them (e.g. the Random baselines have no migration phase).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MapStats {
    /// Complete mapping attempts (1 for HMN; retry count for baselines).
    pub attempts: usize,
    /// Hosting co-location decisions that landed link endpoints together.
    pub colocation_hits: usize,
    /// Hosting placements that fell back to a first-fit scan.
    pub first_fit_fallbacks: usize,
    /// Guests moved by the Migration stage.
    pub migrations: usize,
    /// Migration moves evaluated but rejected (no objective improvement),
    /// or annealing proposals declined by the Metropolis rule.
    pub migrations_rejected: usize,
    /// DFS backtrack steps during baseline routing (0 for A\*Prune).
    pub dfs_backtracks: usize,
    /// Virtual links routed over the network.
    pub routed_links: usize,
    /// Virtual links handled intra-host.
    pub intra_host_links: usize,
    /// A\*Prune partial paths expanded (0 for DFS routing).
    pub astar_expansions: usize,
    /// A\*Prune candidates pushed onto the heap (0 for DFS routing).
    pub astar_pushed: usize,
    /// Dijkstra table computations (latency `ar[]` plus hop-count tables).
    pub dijkstra_runs: usize,
    /// Table lookups answered by a warm cache instead of a Dijkstra run.
    pub ar_cache_hits: usize,
    /// Distinct hop-count tables computed for DFS routing bias.
    pub hop_tables: usize,
    /// Route searches that ran on warm (reused) scratch buffers.
    pub scratch_reuses: usize,
    /// Placement proposals whose energy was evaluated (Migration stage
    /// candidate probes plus annealing Metropolis proposals).
    pub proposals_evaluated: usize,
    /// O(1)/O(degree) incremental energy evaluations (accumulator
    /// `stddev_after` probes plus bandwidth-delta probes).
    pub delta_evaluations: usize,
    /// Full objective recomputations: accumulator builds, periodic drift
    /// refreshes, and resets.
    pub full_evaluations: usize,
    /// Parallel tempering: temperature-exchange attempts between adjacent
    /// replicas at round checkpoints (0 for every other mapper).
    pub replica_exchanges: usize,
    /// Parallel tempering: exchange attempts accepted by the Metropolis
    /// criterion.
    pub exchange_accepts: usize,
    /// Randomized rounding: multiplicative-weights iterations of the
    /// fractional LP solve (0 for every other mapper).
    pub lp_iterations: usize,
    /// Randomized rounding: placement samples drawn from the fractional
    /// solution before one passed the feasibility prechecks.
    pub rounding_attempts: usize,
    /// Randomized rounding: per-guest capacity repairs applied while
    /// sampling (fallbacks away from the sampled host).
    pub repairs: usize,
    /// Wall-clock spent in placement (Hosting or random placement).
    pub placement_time: Duration,
    /// Wall-clock spent in the Migration stage.
    pub migration_time: Duration,
    /// Wall-clock spent routing links.
    pub networking_time: Duration,
    /// Total wall-clock for the whole `map` call.
    pub total_time: Duration,
}

/// A successful mapping plus its quality and cost metrics.
#[derive(Clone, Debug)]
pub struct MapOutcome {
    /// The valid mapping.
    pub mapping: Mapping,
    /// The load-balance factor (Eq. 10) of the mapping.
    pub objective: f64,
    /// Run statistics.
    pub stats: MapStats,
}

impl MapOutcome {
    /// Packages a finished mapping, computing its Eq. 10 objective.
    pub fn new(
        phys: &PhysicalTopology,
        venv: &VirtualEnvironment,
        mapping: Mapping,
        stats: MapStats,
    ) -> Self {
        let objective = mapping_objective(phys, venv, &mapping);
        MapOutcome {
            mapping,
            objective,
            stats,
        }
    }
}

/// A virtual-environment-to-testbed mapper.
///
/// The full family lives in the [`MapperRegistry`](crate::MAPPERS) — the
/// single registration site that the CLI, the bench harness, `compare`,
/// and `serve` all enumerate. As registered there:
/// [`Hmn`](crate::Hmn) (the paper's contribution),
/// [`RandomDfs`](crate::RandomDfs) (R),
/// [`RandomAStar`](crate::RandomAStar) (RA),
/// [`HostingDfs`](crate::HostingDfs) (HS),
/// the [`FirstFitDecreasing`](crate::FirstFitDecreasing) /
/// [`BestFit`](crate::BestFit) / [`WorstFit`](crate::WorstFit)
/// bin-packing baselines,
/// the [`ConsolidatingHmn`](crate::ConsolidatingHmn) objective variant,
/// [`HmnKsp`](crate::HmnKsp) (k-shortest-path routing ablation),
/// [`Annealing`](crate::Annealing) (SA),
/// [`ParallelTempering`](crate::ParallelTempering) (PT),
/// [`RandomizedRounding`](crate::RandomizedRounding) (RR), and the
/// [`HeuristicPool`](crate::HeuristicPool) combinator.
///
/// `rng` drives any randomized decisions; deterministic mappers (HMN)
/// ignore it, which keeps the harness interface uniform: every mapper is a
/// pure function of `(phys, venv, seed)`.
pub trait Mapper {
    /// Short identifier used in reports ("HMN", "R", "RA", "HS", …) —
    /// matches the mapper's label in the [registry](crate::MAPPERS).
    fn name(&self) -> &str;

    /// Attempts to map `venv` onto `phys`.
    fn map(
        &self,
        phys: &PhysicalTopology,
        venv: &VirtualEnvironment,
        rng: &mut dyn RngCore,
    ) -> Result<MapOutcome, MapError>;

    /// [`map`](Self::map) with a caller-owned [`MapCache`] of reusable
    /// topology tables and scratch buffers.
    ///
    /// The cache is strictly an accelerator: implementations must return
    /// bit-identical outcomes (mapping, routes, objective) for any cache
    /// history, so batch harnesses can keep one warm cache per worker
    /// thread. The default ignores the cache and delegates to `map`;
    /// mappers with cacheable hot paths override it.
    fn map_with_cache(
        &self,
        phys: &PhysicalTopology,
        venv: &VirtualEnvironment,
        rng: &mut dyn RngCore,
        cache: &mut MapCache,
    ) -> Result<MapOutcome, MapError> {
        let _ = cache;
        self.map(phys, venv, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emumap_graph::generators;
    use emumap_model::{
        GuestSpec, HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips, Route, StorGb, VmmOverhead,
    };

    #[test]
    fn outcome_computes_objective() {
        let phys = PhysicalTopology::from_shape(
            &generators::line(2),
            std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(1024), StorGb(100.0))),
            LinkSpec::new(Kbps(100.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let mut venv = VirtualEnvironment::new();
        venv.add_guest(GuestSpec::new(Mips(200.0), MemMb(64), StorGb(1.0)));
        let mapping = Mapping::new(vec![phys.hosts()[0]], Vec::<Route>::new());
        let outcome = MapOutcome::new(&phys, &venv, mapping, MapStats::default());
        // Residuals (800, 1000): mean 900, stddev 100.
        assert_eq!(outcome.objective, 100.0);
    }
}
