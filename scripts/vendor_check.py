#!/usr/bin/env python3
"""Fail if any workspace crate depends on something that is not vendored.

The repo's contract (vendor/README.md, CI's CARGO_NET_OFFLINE) is that
every third-party dependency lives in-tree under `vendor/` and every
first-party one under `crates/`. A dependency that names a registry
version — `foo = "1.2"` or `foo = { version = "1.2" }` without a `path` —
would silently reach for crates.io the moment someone builds online.

This walks every `Cargo.toml` in the workspace and checks:

  * `[workspace.dependencies]` entries resolve to a `path` inside
    `crates/` or `vendor/`;
  * per-crate `[dependencies]`, `[dev-dependencies]` and
    `[build-dependencies]` entries either inherit the workspace
    (`workspace = true`) or give an in-tree `path` themselves.

Exits non-zero listing each offending (file, dependency).
"""

import pathlib
import sys
import tomllib

ROOT = pathlib.Path(__file__).resolve().parent.parent
DEP_TABLES = ("dependencies", "dev-dependencies", "build-dependencies")


def dep_error(name: str, spec: object, source: pathlib.Path) -> str | None:
    """Returns a violation message, or None if the dependency is in-tree."""
    if isinstance(spec, str):
        return f"registry version {spec!r} (vendor it and use a path)"
    if not isinstance(spec, dict):
        return f"unrecognized spec {spec!r}"
    if spec.get("workspace") is True:
        return None  # resolved against [workspace.dependencies], checked there
    path = spec.get("path")
    if path is None:
        return "no `path` and not `workspace = true`"
    resolved = (source.parent / path).resolve()
    if not resolved.is_relative_to(ROOT):
        return f"path {path!r} escapes the repository"
    try:
        rel = resolved.relative_to(ROOT)
    except ValueError:
        return f"path {path!r} escapes the repository"
    if rel.parts and rel.parts[0] in ("crates", "vendor"):
        return None
    return f"path {path!r} is not under crates/ or vendor/"


def main() -> int:
    manifests = [ROOT / "Cargo.toml"] + sorted(
        p for p in ROOT.glob("*/*/Cargo.toml") if p.parts[-3] in ("crates", "vendor")
    )
    violations: list[str] = []
    workspace_names: set[str] = set()

    for manifest in manifests:
        with open(manifest, "rb") as f:
            data = tomllib.load(f)
        rel = manifest.relative_to(ROOT)

        for name, spec in data.get("workspace", {}).get("dependencies", {}).items():
            workspace_names.add(name)
            err = dep_error(name, spec, manifest)
            if err:
                violations.append(f"{rel}: [workspace.dependencies] {name}: {err}")

        for table in DEP_TABLES:
            for name, spec in data.get(table, {}).items():
                if isinstance(spec, dict) and spec.get("workspace") is True:
                    if name not in workspace_names:
                        violations.append(
                            f"{rel}: [{table}] {name}: workspace = true but not in "
                            "[workspace.dependencies]"
                        )
                    continue
                err = dep_error(name, spec, manifest)
                if err:
                    violations.append(f"{rel}: [{table}] {name}: {err}")

    for v in violations:
        print(v, file=sys.stderr)
    if not violations:
        print(f"vendor_check: {len(manifests)} manifest(s) OK — all dependencies in-tree")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
