#!/usr/bin/env python3
"""Generate the pinned 500-request churn trace for the serve-soak CI job.

Usage: gen_serve_trace.py > tests/data/serve_soak_requests.jsonl

Emits one `emumap serve` request per line: tenant arrivals (the compact
generator form, so the trace stays tiny and self-contained), departures
picked from the outstanding set, periodic `status` probes, one
`save`/`restore` round-trip through `soak/snapshot.json`, and one
deliberately unknown verb (pinning the protocol-error response). The
stream ends by removing every outstanding tenant, a final `status`
(which the CI gate asserts reports zero tenants and zero leaked
capacity), and `shutdown`.

Determinism: a self-contained xorshift64* generator, no `random` module,
so the byte stream is identical on every Python 3. CI re-runs this
script and diffs against the committed file before replaying it, so the
trace, its golden responses, and this generator can never drift apart.

Departures are drawn from every tenant ever *applied* (the script cannot
know which admissions the server will grant); removing a tenant the
server rejected yields a deterministic `error` response, which the
golden file pins like any other line.
"""

import json
import sys

TOTAL = 500
STATUS_EVERY = 50
MASK = (1 << 64) - 1


class XorShift:
    """xorshift64* — tiny, seedable, version-independent."""

    def __init__(self, seed: int):
        self.state = (seed & MASK) or 0x9E3779B97F4A7C15

    def next(self) -> int:
        x = self.state
        x ^= (x >> 12) & MASK
        x = (x ^ (x << 25)) & MASK
        x ^= (x >> 27) & MASK
        self.state = x
        return (x * 0x2545F4914F6CDD1D) & MASK

    def below(self, n: int) -> int:
        return self.next() % n


def main() -> int:
    rng = XorShift(0x5EED2009)
    lines: list[str] = []
    outstanding: list[str] = []
    next_id = 0

    def emit(obj: dict) -> None:
        lines.append(json.dumps(obj, separators=(",", ":")))

    # Churn until the drain (one remove per outstanding tenant, final
    # status, shutdown) would no longer fit in the 500-line budget.
    while len(lines) + len(outstanding) + 2 < TOTAL:
        room_for_arrival = len(lines) + len(outstanding) + 4 <= TOTAL
        if lines and len(lines) % STATUS_EVERY == 0:
            emit({"status": {}})
        elif len(lines) == 201:
            # Pin the protocol-failure path once, at a fixed spot.
            emit({"ping": {}})
        elif len(lines) == 301:
            emit({"save": {"path": "soak/snapshot.json"}})
        elif len(lines) == 302:
            emit({"restore": {"path": "soak/snapshot.json"}})
        elif room_for_arrival and (not outstanding or rng.below(100) < 65):
            tenant = f"t{next_id:04d}"
            next_id += 1
            emit(
                {
                    "apply": {
                        "id": tenant,
                        "workload": "low" if rng.below(4) == 0 else "high",
                        "guests": 2 + rng.below(10),
                        "density": (rng.below(30) + 1) / 100,
                        "seed": rng.next(),
                    }
                }
            )
            outstanding.append(tenant)
        else:
            tenant = outstanding.pop(rng.below(len(outstanding)))
            emit({"remove": {"id": tenant}})

    # Drain: tear every outstanding tenant down, prove the cluster is
    # pristine, and stop the daemon.
    for tenant in outstanding:
        emit({"remove": {"id": tenant}})
    outstanding.clear()
    while len(lines) < TOTAL - 2:
        emit({"status": {}})
    emit({"status": {}})
    emit({"shutdown": {}})

    assert len(lines) == TOTAL, f"generated {len(lines)} lines, wanted {TOTAL}"
    sys.stdout.write("\n".join(lines) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
