#!/usr/bin/env python3
"""Validate trace JSONL files produced by `emumap map --trace`,
`emumap batch --trace-dir`, and `emumap serve --trace`.

Usage: check_traces.py PATH [PATH ...]

Each PATH is a trace file or a directory scanned for `*.jsonl`. For every
file this asserts the structural contract CI relies on:

  * the file is non-empty and every line is a JSON object with exactly one
    recognized event tag;
  * the stream opens with MapStart and closes with MapEnd;
  * PhaseStart/PhaseEnd pairs are properly bracketed (no overlap, End
    matches the open phase) and phases appear in pipeline order;
  * PhaseEnd carries non-negative integer timings and counters;
  * a Migration PhaseEnd satisfies the delta-evaluation invariant:
    every evaluated proposal performs at least one incremental probe, so
    delta_evaluations >= proposals_evaluated (the annealer probes twice
    per proposal when its bandwidth term is on; the Migration stage
    exactly once);
  * a parallel-tempering trace (MapStart mapper "PT") satisfies the
    exchange invariant: its Migration PhaseEnd reports
    replica_exchanges > 0 (a multi-replica run that never attempts an
    exchange is plain multi-start, not tempering) and
    exchange_accepts <= replica_exchanges;
  * a successful randomized-rounding trace (MapStart mapper "RR",
    MapEnd ok) satisfies the rounding invariant: its Hosting PhaseEnd
    reports lp_iterations >= 1 and rounding_attempts >= 1 (a placement
    that never solved the LP or never sampled it is not a rounding run);
  * an oracle trace satisfies the bound contract on its Exact PhaseEnd:
    nodes_pruned_lagrangian <= exact_nodes_pruned always; a successful
    Lagrangian-bound run (MapStart mapper "EXACT", MapEnd ok) reports
    subgradient_iters >= max(1, exact_nodes_expanded) (every expanded
    node prices at least one dual evaluation — a run that never touched
    the dual silently fell back to water-filling); a water-filling run
    (mapper "EXACT-WF") reports all three Lagrangian counters zero;
  * an epoch-parallel oracle trace (ExactWorker events present) satisfies
    the per-worker counter contract: ExactWorker events appear only
    inside an Exact span, one per worker with distinct worker ids
    0..N-1; the additive search counters (exact_nodes_expanded,
    exact_nodes_pruned, subgradient_iters, bound_improvements,
    nodes_pruned_lagrangian, nodes_stolen, incumbent_publishes) summed
    over the workers equal the Exact PhaseEnd totals; every worker
    reports the same global `epochs` as the PhaseEnd (the epoch count is
    a barrier-synchronized property, not a per-worker tally). A
    sequential oracle trace (PhaseEnd epochs == 0) must carry no
    ExactWorker events, and vice versa.

A file containing RequestStart/RequestEnd events is a **serve stream**
(one span per daemon request) and is held to the session contract
instead:

  * RequestStart/RequestEnd pairs are properly bracketed, with
    consecutive seq numbers and no events between requests;
  * Apply/Remove spans name a tenant; only Apply spans may contain
    embedded MapStart..MapEnd segments, each of which must satisfy the
    full map contract above;
  * RequestEnd counters carry exactly the session counter keys, all
    non-negative; admitted/rejected/removed are monotonically
    non-decreasing (re-baselined across Restore spans, which install
    the snapshot's counters wholesale), removals never exceed
    admissions, and
    active_tenants == admitted - removed at every span (the
    admit/release bookkeeping can never leak a tenant).

Exits non-zero with one line per violation, so a CI failure names the file
and line.
"""

import json
import pathlib
import sys

EVENT_TAGS = {
    "MapStart",
    "PhaseStart",
    "PhaseEnd",
    "LinkIntraHost",
    "LinkRouted",
    "LinkFailed",
    "ExactWorker",
    "MapEnd",
}
# Per-worker Exact counters that must sum to the PhaseEnd totals. The
# one non-additive worker counter is `epochs`: every worker observes the
# same barrier-synchronized epoch count, so it is checked for equality.
EXACT_WORKER_ADDITIVE = (
    "exact_nodes_expanded",
    "exact_nodes_pruned",
    "subgradient_iters",
    "bound_improvements",
    "nodes_pruned_lagrangian",
    "nodes_stolen",
    "incumbent_publishes",
)
SERVE_TAGS = {"RequestStart", "RequestEnd"}
PHASE_ORDER = ["Hosting", "Migration", "Networking", "Exact"]
REQUEST_KINDS = {"Apply", "Remove", "Status", "Save", "Restore"}
SERVE_COUNTER_KEYS = {
    "admitted",
    "rejected",
    "removed",
    "active_tenants",
    "placed_guests",
    "routed_links",
}


def check_file(path: pathlib.Path) -> list[str]:
    errors: list[str] = []
    lines = path.read_text().splitlines()
    if not lines:
        return [f"{path}: empty trace"]

    events = []
    for i, line in enumerate(lines, start=1):
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"{path}:{i}: not JSON: {e}")
            continue
        if not isinstance(obj, dict) or len(obj) != 1:
            errors.append(f"{path}:{i}: expected a single-key event object")
            continue
        tag = next(iter(obj))
        if tag not in EVENT_TAGS | SERVE_TAGS:
            errors.append(f"{path}:{i}: unknown event tag {tag!r}")
            continue
        events.append((i, tag, obj[tag]))

    if not events:
        return errors or [f"{path}: no events"]

    if any(tag in SERVE_TAGS for _, tag, _ in events):
        errors.extend(check_serve_stream(path, events))
    else:
        errors.extend(check_map_stream(path, events))
    return errors


def check_map_stream(path: pathlib.Path, events: list) -> list[str]:
    """One mapper run: MapStart .. MapEnd with bracketed, ordered phases."""
    errors: list[str] = []
    if events[0][1] != "MapStart":
        errors.append(f"{path}:{events[0][0]}: stream must open with MapStart")
    if events[-1][1] != "MapEnd":
        errors.append(f"{path}:{events[-1][0]}: stream must close with MapEnd")

    mapper = events[0][2].get("mapper") if events[0][1] == "MapStart" else None
    map_ok = events[-1][2].get("ok") if events[-1][1] == "MapEnd" else None
    open_phase = None
    last_phase_index = -1
    workers: list = []  # (line, body) of ExactWorker events in the open span
    for i, tag, body in events:
        if tag == "ExactWorker":
            if open_phase != "Exact":
                errors.append(
                    f"{path}:{i}: ExactWorker outside an Exact span "
                    f"(open phase: {open_phase})"
                )
                continue
            counters = body.get("counters")
            if not isinstance(body.get("worker"), int) or not isinstance(counters, dict):
                errors.append(f"{path}:{i}: malformed ExactWorker {body!r}")
                continue
            if any(not isinstance(v, int) or v < 0 for v in counters.values()):
                errors.append(f"{path}:{i}: bad ExactWorker counters {counters!r}")
                continue
            workers.append((i, body))
            continue
        if tag == "PhaseStart":
            if open_phase is not None:
                errors.append(f"{path}:{i}: PhaseStart while {open_phase} is open")
            open_phase = body.get("phase")
            if open_phase not in PHASE_ORDER:
                errors.append(f"{path}:{i}: unknown phase {open_phase!r}")
        elif tag == "PhaseEnd":
            phase = body.get("phase")
            if phase != open_phase:
                errors.append(
                    f"{path}:{i}: PhaseEnd({phase}) does not match open phase {open_phase}"
                )
            open_phase = None
            if phase in PHASE_ORDER:
                idx = PHASE_ORDER.index(phase)
                if idx < last_phase_index:
                    errors.append(f"{path}:{i}: phase {phase} out of pipeline order")
                last_phase_index = idx
            elapsed = body.get("elapsed_us")
            if not isinstance(elapsed, int) or elapsed < 0:
                errors.append(f"{path}:{i}: bad elapsed_us {elapsed!r}")
            counters = body.get("counters")
            if not isinstance(counters, dict) or any(
                not isinstance(v, int) or v < 0 for v in counters.values()
            ):
                errors.append(f"{path}:{i}: bad counters {counters!r}")
            elif phase == "Migration":
                proposals = counters.get("proposals_evaluated", 0)
                deltas = counters.get("delta_evaluations", 0)
                if deltas < proposals:
                    errors.append(
                        f"{path}:{i}: delta_evaluations {deltas} < "
                        f"proposals_evaluated {proposals} (each evaluated "
                        "proposal must use at least one incremental probe)"
                    )
                exchanges = counters.get("replica_exchanges", 0)
                accepts = counters.get("exchange_accepts", 0)
                if accepts > exchanges:
                    errors.append(
                        f"{path}:{i}: exchange_accepts {accepts} > "
                        f"replica_exchanges {exchanges}"
                    )
                if mapper == "PT" and exchanges == 0:
                    errors.append(
                        f"{path}:{i}: PT trace attempted no replica "
                        "exchanges (multi-start, not tempering)"
                    )
            elif phase == "Hosting" and mapper == "RR" and map_ok:
                # A successful RR run must actually have solved the LP and
                # sampled it; failures may bail before either counter moves.
                if counters.get("lp_iterations", 0) < 1:
                    errors.append(
                        f"{path}:{i}: successful RR trace ran no LP "
                        "iterations (placement was not derived from a "
                        "fractional solution)"
                    )
                if counters.get("rounding_attempts", 0) < 1:
                    errors.append(
                        f"{path}:{i}: successful RR trace never sampled "
                        "the fractional solution"
                    )
            elif phase == "Exact":
                subgrad = counters.get("subgradient_iters", 0)
                improvements = counters.get("bound_improvements", 0)
                lag_pruned = counters.get("nodes_pruned_lagrangian", 0)
                pruned = counters.get("exact_nodes_pruned", 0)
                expanded = counters.get("exact_nodes_expanded", 0)
                if lag_pruned > pruned:
                    errors.append(
                        f"{path}:{i}: nodes_pruned_lagrangian {lag_pruned} > "
                        f"exact_nodes_pruned {pruned}"
                    )
                if mapper == "EXACT" and map_ok and subgrad < max(1, expanded):
                    errors.append(
                        f"{path}:{i}: successful Lagrangian oracle run "
                        f"priced only {subgrad} dual evaluation(s) over "
                        f"{expanded} expanded node(s) (the bound silently "
                        "fell back to water-filling)"
                    )
                if mapper == "EXACT-WF" and (
                    subgrad != 0 or improvements != 0 or lag_pruned != 0
                ):
                    errors.append(
                        f"{path}:{i}: water-filling oracle run reports "
                        f"Lagrangian work (subgradient_iters {subgrad}, "
                        f"bound_improvements {improvements}, "
                        f"nodes_pruned_lagrangian {lag_pruned})"
                    )
                # Epoch-parallel worker contract: ExactWorker events and
                # a non-zero PhaseEnd epoch count imply each other, the
                # additive worker counters sum to the totals, and every
                # worker observed the same barrier-synchronized epoch
                # count.
                epochs_total = counters.get("epochs", 0)
                if workers and epochs_total == 0:
                    errors.append(
                        f"{path}:{i}: ExactWorker events in a trace whose "
                        "Exact PhaseEnd reports no epochs (sequential DFS "
                        "must not emit worker counters)"
                    )
                elif not workers and epochs_total > 0:
                    errors.append(
                        f"{path}:{i}: epoch-parallel Exact PhaseEnd "
                        f"({epochs_total} epoch(s)) carries no ExactWorker "
                        "events"
                    )
                if workers:
                    ids = sorted(b.get("worker") for _, b in workers)
                    if ids != list(range(len(workers))):
                        errors.append(
                            f"{path}:{i}: ExactWorker ids {ids} are not "
                            f"0..{len(workers) - 1}"
                        )
                    for key in EXACT_WORKER_ADDITIVE:
                        worker_sum = sum(
                            b["counters"].get(key, 0) for _, b in workers
                        )
                        if worker_sum != counters.get(key, 0):
                            errors.append(
                                f"{path}:{i}: worker {key} sums to "
                                f"{worker_sum}, PhaseEnd total is "
                                f"{counters.get(key, 0)}"
                            )
                    for wi, b in workers:
                        wepochs = b["counters"].get("epochs", 0)
                        if wepochs != epochs_total:
                            errors.append(
                                f"{path}:{wi}: worker "
                                f"{b.get('worker')} reports {wepochs} "
                                f"epoch(s), PhaseEnd reports {epochs_total}"
                            )
                workers = []
    if open_phase is not None:
        errors.append(f"{path}: phase {open_phase} never closed")
    return errors


def check_serve_stream(path: pathlib.Path, events: list) -> list[str]:
    """A daemon session: consecutive request spans, each optionally
    wrapping complete map segments, with leak-free counter bookkeeping."""
    errors: list[str] = []
    if events[0][1] != "RequestStart":
        errors.append(f"{path}:{events[0][0]}: serve stream must open with RequestStart")
    if events[-1][1] != "RequestEnd":
        errors.append(f"{path}:{events[-1][0]}: serve stream must close with RequestEnd")

    open_req = None  # (line, seq, kind)
    prev_seq = None
    prev_counters = None
    segment: list = []
    for i, tag, body in events:
        if tag == "RequestStart":
            if open_req is not None:
                errors.append(f"{path}:{i}: RequestStart while request {open_req[1]} is open")
            seq, kind = body.get("seq"), body.get("kind")
            if not isinstance(seq, int) or (prev_seq is not None and seq != prev_seq + 1):
                errors.append(f"{path}:{i}: seq {seq!r} does not follow {prev_seq}")
            if kind not in REQUEST_KINDS:
                errors.append(f"{path}:{i}: unknown request kind {kind!r}")
            if kind in ("Apply", "Remove") and not isinstance(body.get("tenant"), str):
                errors.append(f"{path}:{i}: {kind} span names no tenant")
            open_req = (i, seq, kind)
            segment = []
        elif tag == "RequestEnd":
            if open_req is None:
                errors.append(f"{path}:{i}: RequestEnd with no open request")
                continue
            if body.get("seq") != open_req[1]:
                errors.append(
                    f"{path}:{i}: RequestEnd seq {body.get('seq')!r} does not "
                    f"match open request {open_req[1]}"
                )
            if not isinstance(body.get("ok"), bool):
                errors.append(f"{path}:{i}: bad ok flag {body.get('ok')!r}")
            elapsed = body.get("elapsed_us")
            if not isinstance(elapsed, int) or elapsed < 0:
                errors.append(f"{path}:{i}: bad elapsed_us {elapsed!r}")
            counters = body.get("counters")
            if (
                not isinstance(counters, dict)
                or set(counters) != SERVE_COUNTER_KEYS
                or any(not isinstance(v, int) or v < 0 for v in counters.values())
            ):
                errors.append(f"{path}:{i}: bad serve counters {counters!r}")
            else:
                # A Restore span installs the snapshot's counters wholesale,
                # which may legitimately rewind past churn — re-baseline
                # monotonicity there instead of flagging it.
                if prev_counters is not None and open_req[2] != "Restore":
                    for key in ("admitted", "rejected", "removed"):
                        if counters[key] < prev_counters[key]:
                            errors.append(
                                f"{path}:{i}: counter {key} went backwards "
                                f"({prev_counters[key]} -> {counters[key]})"
                            )
                if counters["removed"] > counters["admitted"]:
                    errors.append(
                        f"{path}:{i}: removed {counters['removed']} exceeds "
                        f"admitted {counters['admitted']}"
                    )
                if counters["active_tenants"] != counters["admitted"] - counters["removed"]:
                    errors.append(
                        f"{path}:{i}: active_tenants {counters['active_tenants']} != "
                        f"admitted - removed (a tenant leaked)"
                    )
                prev_counters = counters
            if segment:
                errors.append(
                    f"{path}:{i}: request {open_req[1]} left an unclosed map segment"
                )
            prev_seq = open_req[1] if isinstance(open_req[1], int) else prev_seq
            open_req = None
        else:
            # A mapper event: only legal inside an Apply span, as part of
            # a complete MapStart..MapEnd segment.
            if open_req is None:
                errors.append(f"{path}:{i}: {tag} outside any request span")
                continue
            if open_req[2] != "Apply":
                errors.append(f"{path}:{i}: {tag} inside a {open_req[2]} span")
                continue
            if tag == "MapStart" and segment:
                errors.append(f"{path}:{i}: nested MapStart inside request {open_req[1]}")
            segment.append((i, tag, body))
            if tag == "MapEnd":
                errors.extend(check_map_stream(path, segment))
                segment = []
    if open_req is not None:
        errors.append(f"{path}: request {open_req[1]} never closed")
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    files: list[pathlib.Path] = []
    for arg in argv:
        p = pathlib.Path(arg)
        if p.is_dir():
            files.extend(sorted(p.glob("*.jsonl")))
        else:
            files.append(p)
    if not files:
        print(f"check_traces: no trace files under {argv}", file=sys.stderr)
        return 1

    errors: list[str] = []
    for f in files:
        errors.extend(check_file(f))
    for e in errors:
        print(e, file=sys.stderr)
    if not errors:
        print(f"check_traces: {len(files)} trace file(s) OK")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
