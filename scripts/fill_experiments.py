#!/usr/bin/env python3
"""Splice the harness outputs (results/*.txt) into EXPERIMENTS.md.

Each `<!-- MARKER -->` placeholder is replaced with a fenced code block
containing the corresponding harness output. Idempotent: reruns replace the
previously spliced blocks.
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
EXPERIMENTS = ROOT / "EXPERIMENTS.md"
RESULTS = ROOT / "results"

SPLICES = {
    "TABLE2_RESULTS": "table2.txt",
    "TABLE3_RESULTS": "table3.txt",
    "FIGURE1_RESULTS": "figure1.txt",
    "CORRELATION_RESULTS": "correlation.txt",
}


def block(marker: str, body: str) -> str:
    return f"<!-- {marker} -->\n```text\n{body.rstrip()}\n```\n<!-- /{marker} -->"


def main() -> int:
    text = EXPERIMENTS.read_text()
    missing = []
    for marker, filename in SPLICES.items():
        path = RESULTS / filename
        if not path.exists():
            missing.append(filename)
            continue
        body = path.read_text()
        spliced = block(marker, body)
        # Replace an existing spliced block, or the bare placeholder.
        pattern = re.compile(
            rf"<!-- {marker} -->.*?<!-- /{marker} -->", re.DOTALL
        )
        if pattern.search(text):
            text = pattern.sub(lambda _m: spliced, text)
        elif f"<!-- {marker} -->" in text:
            text = text.replace(f"<!-- {marker} -->", spliced)
        else:
            print(f"warning: no marker {marker} in EXPERIMENTS.md", file=sys.stderr)
    EXPERIMENTS.write_text(text)
    if missing:
        print(f"missing results (run the harness first): {', '.join(missing)}", file=sys.stderr)
        return 1
    print("EXPERIMENTS.md updated")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
