//! Dominance and admissibility properties of the oracle's two lower
//! bounds, checked at arbitrary branch-and-bound nodes (random partial
//! placements of random instances):
//!
//! 1. **Dominance** — the Lagrangian bound is never weaker than the
//!    water-filling bound at the same node. This is structural (the
//!    zero-price dual evaluation on a restricted polytope already
//!    contains the water-filling relaxation), so any violation is a bug,
//!    not noise.
//! 2. **Admissibility** — neither bound ever exceeds the brute-forced
//!    optimum over all completions satisfying the necessary feasibility
//!    conditions the bounds price (memory/storage caps, pairwise
//!    shortest-path latency, per-host bandwidth cuts). An inadmissible
//!    bound would let the oracle prune the true optimum and certify a
//!    wrong answer.
//! 3. **Infeasibility certificates are exact** — when the Lagrangian
//!    bound returns `INFINITY` (a no-completion certificate), the brute
//!    force must confirm no completion exists.
//! 4. **Scratch independence** — the bound is a pure function of the
//!    node: a fresh scratch and a scratch warmed on a different instance
//!    produce bit-identical results (the determinism contract that lets
//!    `MapCache` be shared across solves and threads).
//!
//! The brute force enforces *necessary* conditions only (it does not
//! route), so its optimum lower-bounds the fully-routed optimum and the
//! admissibility direction is sound: `bound ≤ necessary-opt ≤ routed-opt`.

use emumap::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const EPS: f64 = 1e-9;

type Case = (PhysicalTopology, VirtualEnvironment, Vec<Option<usize>>);

/// A random heterogeneous instance plus a random resource-feasible
/// partial placement, mimicking an interior search node. Heterogeneous
/// host CPUs matter: on uniform hosts many placements share one residual
/// multiset and the bounds cannot separate anything.
fn build_case(hosts: usize, topo: usize, guests: usize, density: f64, seed: u64) -> Case {
    let mut rng = SmallRng::seed_from_u64(seed);
    let shape = match topo {
        0 => generators::ring(hosts),
        1 => generators::line(hosts),
        _ => generators::switched_cascade(hosts, 8),
    };
    let specs: Vec<HostSpec> = (0..hosts)
        .map(|_| {
            HostSpec::new(
                Mips(rng.gen_range(500.0..3000.0)),
                MemMb(rng.gen_range(512..2048)),
                StorGb(rng.gen_range(100.0..1000.0)),
            )
        })
        .collect();
    let phys = PhysicalTopology::from_shape(
        &shape,
        specs.into_iter(),
        LinkSpec::new(Kbps(10_000.0), Millis(5.0)),
        VmmOverhead::NONE,
    );
    let spec = VirtualEnvSpec {
        guests,
        density,
        mem_mb: Range::new(64.0, 900.0),
        stor_gb: Range::new(10.0, 120.0),
        cpu_mips: Range::new(50.0, 800.0),
        bw_kbps: Range::new(50.0, 500.0),
        lat_ms: Range::new(10.0, 60.0),
        distribution: Distribution::Uniform,
    };
    let venv = spec.generate(&mut rng);

    // Assign roughly half the guests to random hosts, respecting the
    // memory/storage caps (the same invariant the search maintains).
    let n = phys.hosts().len();
    let mut r_mem: Vec<u64> = phys
        .hosts()
        .iter()
        .map(|&h| phys.effective_mem(h).value())
        .collect();
    let mut r_stor: Vec<f64> = phys
        .hosts()
        .iter()
        .map(|&h| phys.effective_stor(h).value())
        .collect();
    let mut placement = vec![None; venv.guest_count()];
    for (g, assigned) in placement.iter_mut().enumerate() {
        if rng.gen_range(0.0..1.0) < 0.5 {
            continue;
        }
        let spec = venv.guest(GuestId::from_index(g));
        for _ in 0..3 {
            let slot = rng.gen_range(0..n);
            if r_mem[slot] >= spec.mem.value() && r_stor[slot] >= spec.stor.value() {
                r_mem[slot] -= spec.mem.value();
                r_stor[slot] -= spec.stor.value();
                *assigned = Some(slot);
                break;
            }
        }
    }
    (phys, venv, placement)
}

/// Sized so the brute force stays ≤ 5⁶ completions per case.
fn arb_case() -> impl Strategy<Value = Case> {
    (
        2usize..=5,   // hosts
        0usize..3,    // topology selector
        1usize..=6,   // guests
        0.0f64..0.6,  // density
        any::<u64>(), // seed
    )
        .prop_map(|(hosts, topo, guests, density, seed)| {
            build_case(hosts, topo, guests, density, seed)
        })
}

/// Exhaustive minimum of the residual-CPU stddev over every completion of
/// `placement` that satisfies the necessary conditions the bounds price:
/// cumulative memory/storage caps, the Eq. 8 pairwise latency bound along
/// shortest physical paths, and per-host bandwidth cuts. `None` when no
/// completion qualifies.
fn brute_force_optimum(
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
    placement: &[Option<usize>],
    topo: &mut ArTables,
) -> Option<f64> {
    let hosts: Vec<NodeId> = phys.hosts().to_vec();
    let n = hosts.len();
    topo.prepare(phys);

    // All-pairs host latency along shortest paths (the ar[] tables).
    let mut lat = vec![0.0; n * n];
    for (j, &hj) in hosts.iter().enumerate() {
        let (ar, _) = topo.ar_and_csr(phys, hj);
        for (i, &hi) in hosts.iter().enumerate() {
            lat[i * n + j] = ar[hi.index()];
        }
    }
    // Static cut capacity: total physical bandwidth incident to each host.
    let mut cut_static = vec![0.0; n];
    for e in phys.graph().edge_ids() {
        let (a, b) = phys.graph().endpoints(e);
        let bw = phys.link(e).bw.value();
        for node in [a, b] {
            if let Some(slot) = hosts.iter().position(|&h| h == node) {
                cut_static[slot] += bw;
            }
        }
    }
    let links: Vec<(usize, usize, f64, f64)> = venv
        .link_ids()
        .filter_map(|l| {
            let (a, b) = venv.link_endpoints(l);
            if a == b {
                return None;
            }
            let spec = venv.link(l);
            Some((a.index(), b.index(), spec.bw.value(), spec.lat.value()))
        })
        .collect();

    let base_proc: Vec<f64> = hosts
        .iter()
        .map(|&h| phys.effective_proc(h).value())
        .collect();
    let base_mem: Vec<u64> = hosts
        .iter()
        .map(|&h| phys.effective_mem(h).value())
        .collect();
    let base_stor: Vec<f64> = hosts
        .iter()
        .map(|&h| phys.effective_stor(h).value())
        .collect();
    let unassigned: Vec<usize> = placement
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_none())
        .map(|(g, _)| g)
        .collect();
    let total: u64 = (n as u64).pow(unassigned.len() as u32);

    let mut slot_of = vec![usize::MAX; venv.guest_count()];
    let mut best: Option<f64> = None;
    'next: for code in 0..total {
        for (g, s) in placement.iter().enumerate() {
            slot_of[g] = s.unwrap_or(usize::MAX);
        }
        let mut c = code;
        for &g in &unassigned {
            slot_of[g] = (c % n as u64) as usize;
            c /= n as u64;
        }
        let mut r_proc = base_proc.clone();
        let mut r_mem = base_mem.clone();
        let mut r_stor = base_stor.clone();
        for (g, &slot) in slot_of.iter().enumerate() {
            let spec = venv.guest(GuestId::from_index(g));
            if r_mem[slot] < spec.mem.value() || r_stor[slot] < spec.stor.value() {
                continue 'next;
            }
            r_proc[slot] -= spec.proc.value();
            r_mem[slot] -= spec.mem.value();
            r_stor[slot] -= spec.stor.value();
        }
        let mut cut_usage = vec![0.0; n];
        for &(a, b, bw, bound) in &links {
            let (i, j) = (slot_of[a], slot_of[b]);
            if i == j {
                continue; // intra-host links are free (Eq. 6 slack)
            }
            if lat[i * n + j] > bound + EPS {
                continue 'next;
            }
            cut_usage[i] += bw;
            cut_usage[j] += bw;
        }
        for i in 0..n {
            if cut_usage[i] > cut_static[i] + 1e-6 {
                continue 'next;
            }
        }
        let mean = r_proc.iter().sum::<f64>() / n as f64;
        let var = r_proc.iter().map(|&r| (r - mean) * (r - mean)).sum::<f64>() / n as f64;
        let stddev = var.sqrt();
        best = Some(best.map_or(stddev, |b: f64| b.min(stddev)));
    }
    best
}

/// The water-filling bound exactly as the oracle computes it at a node:
/// residual CPUs after the partial placement, total unassigned demand.
fn waterfill_at(
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
    placement: &[Option<usize>],
) -> f64 {
    let mut r_proc: Vec<f64> = phys
        .hosts()
        .iter()
        .map(|&h| phys.effective_proc(h).value())
        .collect();
    let mut demand = 0.0;
    for (g, slot) in placement.iter().enumerate() {
        let d = venv.guest(GuestId::from_index(g)).proc.value();
        match slot {
            Some(s) => r_proc[*s] -= d,
            None => demand += d,
        }
    }
    residual_stddev_lower_bound(&r_proc, demand)
}

/// Properties 1–3: dominance over the water-filling bound, admissibility
/// against the brute force, and exact infeasibility certificates — each
/// checked both without an incumbent (single zero-price evaluation) and
/// with the optimum as incumbent (full subgradient ascent).
fn dominance_check(
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
    placement: &[Option<usize>],
) {
    let wf = waterfill_at(phys, venv, placement);
    let mut topo = ArTables::new();
    let optimum = brute_force_optimum(phys, venv, placement, &mut topo);

    let config = LagrangianConfig::default();
    for incumbent in [f64::INFINITY, optimum.unwrap_or(f64::INFINITY)] {
        let out = lagrangian_bound_for_partial(
            phys,
            venv,
            placement,
            incumbent,
            &config,
            &mut topo,
            &mut LagrangianScratch::new(),
        );
        assert!(
            out.bound >= wf - EPS,
            "lagrangian {} < waterfill {wf} (incumbent {incumbent})",
            out.bound
        );
        assert!(out.evaluations >= 1, "bound reported no dual evaluations");
        match optimum {
            Some(opt) => {
                assert!(
                    wf <= opt + EPS,
                    "waterfill {wf} exceeds the brute-forced optimum {opt}"
                );
                assert!(
                    out.bound <= opt + EPS,
                    "lagrangian {} exceeds the brute-forced optimum {opt} \
                     (incumbent {incumbent})",
                    out.bound
                );
            }
            None => {
                // No feasible completion: any bound (including INFINITY)
                // is admissible; nothing to compare against.
            }
        }
        if out.bound.is_infinite() {
            assert!(
                optimum.is_none(),
                "lagrangian certified infeasible but a completion with \
                 objective {:?} exists",
                optimum
            );
        }
    }
}

/// Property 4: bit-identical bounds from a fresh scratch and a scratch
/// previously warmed on a *different* instance and placement.
fn scratch_independence_check(
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
    placement: &[Option<usize>],
) {
    let config = LagrangianConfig::default();
    let incumbent = 1_000.0; // finite: forces the ascent to actually run
    let mut topo = ArTables::new();
    let fresh = lagrangian_bound_for_partial(
        phys,
        venv,
        placement,
        incumbent,
        &config,
        &mut topo,
        &mut LagrangianScratch::new(),
    );

    // Warm a scratch (and a topology cache) on an unrelated instance…
    let (other_phys, other_venv, other_placement) = build_case(4, 1, 4, 0.3, 0xd15_ea5e);
    let mut warmed = LagrangianScratch::new();
    let mut other_topo = ArTables::new();
    let _ = lagrangian_bound_for_partial(
        &other_phys,
        &other_venv,
        &other_placement,
        incumbent,
        &config,
        &mut other_topo,
        &mut warmed,
    );
    // …then reuse it: the result must be bit-identical.
    let reused = lagrangian_bound_for_partial(
        phys,
        venv,
        placement,
        incumbent,
        &config,
        &mut topo,
        &mut warmed,
    );
    assert_eq!(
        fresh.bound.to_bits(),
        reused.bound.to_bits(),
        "scratch history changed the bound: fresh {} vs reused {}",
        fresh.bound,
        reused.bound
    );
    assert_eq!(fresh.evaluations, reused.evaluations);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lagrangian_dominates_waterfill_and_both_are_admissible(
        (phys, venv, placement) in arb_case()
    ) {
        dominance_check(&phys, &venv, &placement);
    }

    #[test]
    fn lagrangian_bound_is_scratch_independent((phys, venv, placement) in arb_case()) {
        scratch_independence_check(&phys, &venv, &placement);
    }
}

/// Replays every seed pinned in
/// `proptest-regressions/bound_dominance.txt`, mirroring the replay
/// harness of `property_mappings.rs` (the shim has no automatic
/// persistence, so this file is the regression memory).
#[test]
fn regression_seeds_replay() {
    let pinned = include_str!("../proptest-regressions/bound_dominance.txt");
    let mut replayed = 0u32;
    for line in pinned.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        assert_eq!(parts.next(), Some("cc"), "bad regression line: {line}");
        let name = parts
            .next()
            .unwrap_or_else(|| panic!("missing test name in: {line}"));
        let seed_tok = parts
            .next()
            .unwrap_or_else(|| panic!("missing seed in: {line}"));
        let seed = u64::from_str_radix(seed_tok.trim_start_matches("0x"), 16)
            .unwrap_or_else(|e| panic!("bad seed {seed_tok}: {e}"));

        let mut rng = SmallRng::seed_from_u64(seed);
        match name {
            "lagrangian_dominates_waterfill_and_both_are_admissible" => {
                let (phys, venv, placement) = arb_case().generate(&mut rng);
                dominance_check(&phys, &venv, &placement);
            }
            "lagrangian_bound_is_scratch_independent" => {
                let (phys, venv, placement) = arb_case().generate(&mut rng);
                scratch_independence_check(&phys, &venv, &placement);
            }
            other => panic!("regression file pins unknown test '{other}'"),
        }
        replayed += 1;
    }
    assert!(replayed > 0, "regression file pinned no cases");
}
