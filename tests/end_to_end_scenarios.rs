//! End-to-end runs of (reduced) paper scenarios across all mappers, with
//! every produced mapping checked against the formal model.

use emumap::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn mappers() -> Vec<Box<dyn Mapper>> {
    vec![
        Box::new(Hmn::new()),
        Box::new(RandomDfs::default()),
        Box::new(RandomAStar::default()),
        Box::new(HostingDfs::default()),
    ]
}

#[test]
fn every_mapper_validates_on_the_easy_high_level_scenario() {
    let cluster = ClusterSpec::paper();
    let scenario = Scenario {
        ratio: 2.5,
        density: 0.02,
        workload: WorkloadKind::HighLevel,
    };
    let (torus, switched) = instantiate_both(&cluster, &scenario, 0, 42);
    for inst in [&torus, &switched] {
        for mapper in mappers() {
            let mut rng = SmallRng::seed_from_u64(inst.mapper_seed);
            match mapper.map(&inst.phys, &inst.venv, &mut rng) {
                Ok(out) => {
                    assert_eq!(
                        validate_mapping(&inst.phys, &inst.venv, &out.mapping),
                        Ok(()),
                        "{} produced an invalid mapping",
                        mapper.name()
                    );
                    assert!(out.objective >= 0.0);
                }
                Err(e) => {
                    // Only the DFS-routing baselines may fail here, and only
                    // on the torus (the switched path is unique and short).
                    assert!(
                        matches!(e, MapError::RetriesExhausted { .. }),
                        "{} failed unexpectedly: {e}",
                        mapper.name()
                    );
                }
            }
        }
    }
}

#[test]
fn hmn_beats_random_astar_on_objective() {
    // The core Table 2 relationship: HMN's objective is well below RA's on
    // the same instances (both always succeed on the switched cluster).
    let cluster = ClusterSpec::paper();
    let mut hmn_total = 0.0;
    let mut ra_total = 0.0;
    let mut n = 0;
    for rep in 0..3 {
        let scenario = Scenario {
            ratio: 5.0,
            density: 0.02,
            workload: WorkloadKind::HighLevel,
        };
        let inst = instantiate(&cluster, ClusterSpec::paper_switched(), &scenario, rep, 7);
        let mut rng = SmallRng::seed_from_u64(inst.mapper_seed);
        let hmn = Hmn::new()
            .map(&inst.phys, &inst.venv, &mut rng)
            .expect("HMN maps 5:1");
        let mut rng = SmallRng::seed_from_u64(inst.mapper_seed);
        let ra = RandomAStar::default()
            .map(&inst.phys, &inst.venv, &mut rng)
            .expect("RA maps 5:1");
        hmn_total += hmn.objective;
        ra_total += ra.objective;
        n += 1;
    }
    assert!(n > 0);
    assert!(
        hmn_total < ra_total * 0.85,
        "HMN should clearly beat RA on load balance: {hmn_total:.1} vs {ra_total:.1}"
    );
}

#[test]
fn hmn_handles_the_largest_low_level_scenario() {
    // 50:1 — 2000 guests, the paper's biggest instance.
    let cluster = ClusterSpec::paper();
    let scenario = Scenario {
        ratio: 50.0,
        density: 0.01,
        workload: WorkloadKind::LowLevel,
    };
    let inst = instantiate(&cluster, ClusterSpec::paper_torus(), &scenario, 0, 11);
    assert_eq!(inst.venv.guest_count(), 2000);
    let mut rng = SmallRng::seed_from_u64(inst.mapper_seed);
    let out = Hmn::new()
        .map(&inst.phys, &inst.venv, &mut rng)
        .expect("the low-level workload is comfortably mappable");
    assert_eq!(
        validate_mapping(&inst.phys, &inst.venv, &out.mapping),
        Ok(())
    );
    assert_eq!(
        out.stats.routed_links + out.stats.intra_host_links,
        inst.venv.link_count()
    );
}

#[test]
fn both_clusters_share_instances_and_hmn_placement_is_identical() {
    // HMN's Hosting and Migration only look at host resources, so on the
    // same host set the placement is the same on both topologies; only the
    // routes differ.
    let cluster = ClusterSpec::paper();
    let scenario = Scenario {
        ratio: 5.0,
        density: 0.015,
        workload: WorkloadKind::HighLevel,
    };
    let (torus, switched) = instantiate_both(&cluster, &scenario, 1, 99);
    let mut rng = SmallRng::seed_from_u64(torus.mapper_seed);
    let a = Hmn::new()
        .map(&torus.phys, &torus.venv, &mut rng)
        .expect("maps");
    let mut rng = SmallRng::seed_from_u64(switched.mapper_seed);
    let b = Hmn::new()
        .map(&switched.phys, &switched.venv, &mut rng)
        .expect("maps");
    assert_eq!(a.mapping.placement(), b.mapping.placement());
    assert!((a.objective - b.objective).abs() < 1e-9);
}

#[test]
fn pool_of_everything_is_at_least_as_good_as_hmn() {
    let cluster = ClusterSpec::paper();
    let scenario = Scenario {
        ratio: 7.5,
        density: 0.02,
        workload: WorkloadKind::HighLevel,
    };
    let inst = instantiate(&cluster, ClusterSpec::paper_switched(), &scenario, 0, 5);
    let mut rng = SmallRng::seed_from_u64(inst.mapper_seed);
    let hmn = Hmn::new()
        .map(&inst.phys, &inst.venv, &mut rng)
        .expect("maps");
    let pool = HeuristicPool::new(
        vec![
            Box::new(Hmn::new()),
            Box::new(RandomAStar::default()),
            Box::new(HostingDfs::default()),
        ],
        PoolPolicy::BestObjective,
    );
    let mut rng = SmallRng::seed_from_u64(inst.mapper_seed);
    let best = pool
        .map(&inst.phys, &inst.venv, &mut rng)
        .expect("pool maps");
    assert!(best.objective <= hmn.objective + 1e-9);
}
