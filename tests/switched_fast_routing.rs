//! §5.2's switched-cluster claims: "in this topology there is only one
//! possible path to each virtual link" and "the mapping time was less than
//! one second in all scenarios".

use emumap::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

#[test]
fn switched_routes_are_exactly_host_switch_host() {
    let cluster = ClusterSpec::paper();
    let scenario = Scenario {
        ratio: 20.0,
        density: 0.01,
        workload: WorkloadKind::LowLevel,
    };
    let inst = instantiate(&cluster, ClusterSpec::paper_switched(), &scenario, 0, 3);
    let mut rng = SmallRng::seed_from_u64(inst.mapper_seed);
    let out = Hmn::new()
        .map(&inst.phys, &inst.venv, &mut rng)
        .expect("maps");
    for l in inst.venv.link_ids() {
        let route = out.mapping.route_of(l);
        if !route.is_intra_host() {
            assert_eq!(
                route.hop_count(),
                2,
                "switched cluster with one switch: every inter-host route is 2 hops"
            );
        }
    }
}

#[test]
fn switched_mapping_is_sub_second_even_at_50_to_1() {
    // Release-mode Rust maps far faster than the paper's Java, so the
    // sub-second bound the paper reports for the switched cluster must
    // hold with a wide margin even in a debug-friendly test (we allow 30 s
    // in debug builds; release is milliseconds).
    let budget = if cfg!(debug_assertions) { 30.0 } else { 1.0 };
    let cluster = ClusterSpec::paper();
    let scenario = Scenario {
        ratio: 50.0,
        density: 0.01,
        workload: WorkloadKind::LowLevel,
    };
    let inst = instantiate(&cluster, ClusterSpec::paper_switched(), &scenario, 0, 4);
    let mut rng = SmallRng::seed_from_u64(inst.mapper_seed);
    let start = Instant::now();
    let out = Hmn::new()
        .map(&inst.phys, &inst.venv, &mut rng)
        .expect("maps");
    let elapsed = start.elapsed().as_secs_f64();
    assert!(
        elapsed < budget,
        "switched mapping took {elapsed:.2}s (budget {budget}s)"
    );
    assert_eq!(
        validate_mapping(&inst.phys, &inst.venv, &out.mapping),
        Ok(())
    );
}

#[test]
fn switched_dijkstra_cache_needs_at_most_one_run_per_destination_host() {
    // The A*Prune ar[] tables are cached per destination; on a 40-host
    // cluster the Networking stage can never run Dijkstra more than 40
    // times however many links it routes.
    use emumap::mapping::hosting::links_by_descending_bw;
    use emumap::mapping::networking::networking_stage;
    use emumap::mapping::{hosting::hosting_stage, PlacementState};

    let cluster = ClusterSpec::paper();
    let scenario = Scenario {
        ratio: 30.0,
        density: 0.01,
        workload: WorkloadKind::LowLevel,
    };
    let inst = instantiate(&cluster, ClusterSpec::paper_switched(), &scenario, 0, 5);
    let links = links_by_descending_bw(&inst.venv);
    let mut st = PlacementState::new(&inst.phys, &inst.venv);
    hosting_stage(&mut st, &links).expect("hostable");
    let (_, stats) = networking_stage(&mut st, &links, &Default::default()).expect("routable");
    assert!(stats.dijkstra_runs <= inst.phys.host_count());
    assert!(
        stats.routed_links > stats.dijkstra_runs,
        "cache actually pays off"
    );
}

#[test]
fn torus_routes_respect_latency_bounds_and_stay_short() {
    let cluster = ClusterSpec::paper();
    let scenario = Scenario {
        ratio: 5.0,
        density: 0.02,
        workload: WorkloadKind::HighLevel,
    };
    let inst = instantiate(&cluster, ClusterSpec::paper_torus(), &scenario, 0, 6);
    let mut rng = SmallRng::seed_from_u64(inst.mapper_seed);
    let out = Hmn::new()
        .map(&inst.phys, &inst.venv, &mut rng)
        .expect("maps");
    for l in inst.venv.link_ids() {
        let route = out.mapping.route_of(l);
        let bound = inst.venv.link(l).lat.value();
        let total: f64 = route
            .edges()
            .iter()
            .map(|&e| inst.phys.link(e).lat.value())
            .sum();
        assert!(total <= bound + 1e-9);
        // 5 ms hops with <= 60 ms bounds: never more than 12 hops.
        assert!(route.hop_count() <= 12);
    }
}
