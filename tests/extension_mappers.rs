//! End-to-end coverage of the §6-style extensions: K-shortest-paths
//! routing, exhaustive migration, and the classical greedy placements —
//! all on paper-shaped instances, all validated against the formal model.

use emumap::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn paper_instance(ratio: f64, rep: u32) -> Instance {
    let cluster = ClusterSpec::paper();
    let scenario = Scenario {
        ratio,
        density: 0.02,
        workload: WorkloadKind::HighLevel,
    };
    instantiate(&cluster, ClusterSpec::paper_torus(), &scenario, rep, 77)
}

#[test]
fn all_extension_mappers_validate_on_a_paper_scenario() {
    let inst = paper_instance(5.0, 0);
    let mappers: Vec<Box<dyn Mapper>> = vec![
        Box::new(HmnKsp::default()),
        Box::new(Hmn::with_config(HmnConfig {
            migration: MigrationPolicy::Exhaustive,
            ..Default::default()
        })),
        Box::new(FirstFitDecreasing::default()),
        Box::new(BestFit::default()),
        Box::new(WorstFit::default()),
        Box::new(ConsolidatingHmn::default()),
    ];
    for mapper in mappers {
        let mut rng = SmallRng::seed_from_u64(inst.mapper_seed);
        let out = mapper
            .map(&inst.phys, &inst.venv, &mut rng)
            .unwrap_or_else(|e| panic!("{} failed on 5:1: {e}", mapper.name()));
        assert_eq!(
            validate_mapping(&inst.phys, &inst.venv, &out.mapping),
            Ok(()),
            "{} produced an invalid mapping",
            mapper.name()
        );
    }
}

#[test]
fn annealing_is_never_worse_than_hmn_on_balance() {
    // SA seeds from the HMN fixpoint and keeps the best placement visited,
    // so with a pure Eq. 10 energy its objective is bounded by HMN's.
    for rep in 0..2 {
        let inst = paper_instance(5.0, rep);
        let mut rng = SmallRng::seed_from_u64(inst.mapper_seed);
        let hmn = Hmn::new()
            .map(&inst.phys, &inst.venv, &mut rng)
            .expect("maps");
        let mut rng = SmallRng::seed_from_u64(inst.mapper_seed);
        let sa = Annealing {
            config: AnnealingConfig {
                iterations: 5_000,
                bandwidth_weight: 0.0,
                ..Default::default()
            },
        }
        .map(&inst.phys, &inst.venv, &mut rng)
        .expect("maps");
        assert!(
            sa.objective <= hmn.objective + 1e-9,
            "rep {rep}: SA {} vs HMN {}",
            sa.objective,
            hmn.objective
        );
        assert_eq!(
            validate_mapping(&inst.phys, &inst.venv, &sa.mapping),
            Ok(())
        );
    }
}

#[test]
fn exhaustive_migration_is_at_least_as_balanced_as_paper_rule() {
    for rep in 0..3 {
        let inst = paper_instance(2.5, rep);
        let mut rng = SmallRng::seed_from_u64(inst.mapper_seed);
        let paper = Hmn::new()
            .map(&inst.phys, &inst.venv, &mut rng)
            .expect("maps");
        let mut rng = SmallRng::seed_from_u64(inst.mapper_seed);
        let exhaustive = Hmn::with_config(HmnConfig {
            migration: MigrationPolicy::Exhaustive,
            ..Default::default()
        })
        .map(&inst.phys, &inst.venv, &mut rng)
        .expect("maps");
        assert!(
            exhaustive.objective <= paper.objective + 1e-9,
            "rep {rep}: exhaustive {} vs paper {}",
            exhaustive.objective,
            paper.objective
        );
    }
}

#[test]
fn hmn_beats_every_classical_placement_on_balance() {
    // The point of the paper's placement pipeline: against textbook
    // bin-packing placements (which ignore CPU balance or ignore affinity),
    // HMN's objective is at least as good on paper-shaped instances.
    let inst = paper_instance(5.0, 1);
    let mut rng = SmallRng::seed_from_u64(inst.mapper_seed);
    let hmn = Hmn::new()
        .map(&inst.phys, &inst.venv, &mut rng)
        .expect("maps");
    for mapper in [
        Box::new(FirstFitDecreasing::default()) as Box<dyn Mapper>,
        Box::new(BestFit::default()),
    ] {
        let mut rng = SmallRng::seed_from_u64(inst.mapper_seed);
        if let Ok(out) = mapper.map(&inst.phys, &inst.venv, &mut rng) {
            assert!(
                hmn.objective <= out.objective + 1e-9,
                "{}: {} vs HMN {}",
                mapper.name(),
                out.objective,
                hmn.objective
            );
        }
    }
}

#[test]
fn ksp_routing_matches_astar_success_on_loose_instances() {
    // With generous k the KSP router should map the easy scenarios too.
    let inst = paper_instance(2.5, 2);
    let mut rng = SmallRng::seed_from_u64(inst.mapper_seed);
    let out = HmnKsp { k: 8 }
        .map(&inst.phys, &inst.venv, &mut rng)
        .expect("loose scenario maps under KSP routing");
    assert_eq!(
        validate_mapping(&inst.phys, &inst.venv, &out.mapping),
        Ok(())
    );
    // Same placement as HMN (routing strategy does not affect placement).
    let mut rng = SmallRng::seed_from_u64(inst.mapper_seed);
    let hmn = Hmn::new()
        .map(&inst.phys, &inst.venv, &mut rng)
        .expect("maps");
    assert_eq!(out.mapping.placement(), hmn.mapping.placement());
}

#[test]
fn diagnostics_prove_infeasibility_where_mappers_fail() {
    // A latency-impossible instance: every mapper fails, and diagnose_route
    // proves WHY for the failing link.
    let phys = PhysicalTopology::from_shape(
        &generators::line(4),
        std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(200), StorGb(100.0))),
        LinkSpec::new(Kbps(1000.0), Millis(20.0)),
        VmmOverhead::NONE,
    );
    let mut venv = VirtualEnvironment::new();
    // Four guests, one per host forced by memory; chain of links with a
    // 25 ms bound (one hop is 20 ms, two hops 40 ms: only adjacent hosts
    // can talk).
    let g: Vec<_> = (0..4)
        .map(|_| venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(150), StorGb(1.0))))
        .collect();
    venv.add_link(g[0], g[1], VLinkSpec::new(Kbps(10.0), Millis(25.0)));
    venv.add_link(g[0], g[2], VLinkSpec::new(Kbps(10.0), Millis(25.0)));
    venv.add_link(g[0], g[3], VLinkSpec::new(Kbps(10.0), Millis(25.0)));

    let mut rng = SmallRng::seed_from_u64(1);
    let err = Hmn::new().map(&phys, &venv, &mut rng);
    assert!(
        err.is_err(),
        "one guest per host makes some link span >= 2 hops"
    );

    // The worst pair (ends of the line) is provably latency-infeasible.
    let residual = ResidualState::new(&phys);
    let verdict = emumap::mapping::diagnose_route(
        &phys,
        &residual,
        phys.hosts()[0],
        phys.hosts()[3],
        &VLinkSpec::new(Kbps(10.0), Millis(25.0)),
    );
    assert!(matches!(
        verdict,
        emumap::mapping::RouteVerdict::LatencyInfeasible { .. }
    ));
}
