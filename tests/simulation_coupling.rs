//! Cross-crate check of the §5.2 correlation claim at test scale: better
//! Eq. 10 objectives must mean shorter simulated experiments, and the
//! pooled Pearson coefficient over heuristic-diverse mappings must be
//! strongly positive.

use emumap::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn pearson(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let cov: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let vx: f64 = x.iter().map(|a| (a - mx).powi(2)).sum();
    let vy: f64 = y.iter().map(|b| (b - my).powi(2)).sum();
    cov / (vx.sqrt() * vy.sqrt())
}

#[test]
fn objective_correlates_with_experiment_runtime() {
    let cluster = ClusterSpec::paper();
    let scenario = Scenario {
        ratio: 7.5,
        density: 0.02,
        workload: WorkloadKind::HighLevel,
    };
    let mut objectives = Vec::new();
    let mut runtimes = Vec::new();

    for rep in 0..4 {
        let inst = instantiate(&cluster, ClusterSpec::paper_switched(), &scenario, rep, 13);
        let mappers: Vec<Box<dyn Mapper>> = vec![
            Box::new(Hmn::new()),
            Box::new(RandomAStar::default()),
            Box::new(HostingDfs::default()),
        ];
        for mapper in &mappers {
            let mut rng = SmallRng::seed_from_u64(inst.mapper_seed);
            let Ok(out) = mapper.map(&inst.phys, &inst.venv, &mut rng) else {
                continue;
            };
            let sim = run_experiment(
                &inst.phys,
                &inst.venv,
                &out.mapping,
                &ExperimentSpec::default(),
            );
            objectives.push(out.objective);
            runtimes.push(sim.total_s);
        }
    }

    assert!(objectives.len() >= 8, "need enough successful mappings");
    let r = pearson(&objectives, &runtimes);
    assert!(
        r > 0.3,
        "objective and experiment runtime should correlate positively (paper: 0.7), got {r:.3}"
    );
}

#[test]
fn hmn_experiment_is_faster_than_random_astar_on_the_same_instance() {
    let cluster = ClusterSpec::paper();
    let scenario = Scenario {
        ratio: 10.0,
        density: 0.02,
        workload: WorkloadKind::HighLevel,
    };
    let mut hmn_wins = 0;
    let mut total = 0;
    // Hosting legitimately fails on some reps at this 25:1 guest:host
    // ratio (memory pressure), so sample enough reps that at least three
    // instances are mappable by both heuristics.
    for rep in 0..12 {
        let inst = instantiate(&cluster, ClusterSpec::paper_switched(), &scenario, rep, 21);
        let mut rng = SmallRng::seed_from_u64(inst.mapper_seed);
        let Ok(hmn) = Hmn::new().map(&inst.phys, &inst.venv, &mut rng) else {
            continue;
        };
        let mut rng = SmallRng::seed_from_u64(inst.mapper_seed);
        let Ok(ra) = RandomAStar::default().map(&inst.phys, &inst.venv, &mut rng) else {
            continue;
        };
        let spec = ExperimentSpec::default();
        let t_hmn = run_experiment(&inst.phys, &inst.venv, &hmn.mapping, &spec).total_s;
        let t_ra = run_experiment(&inst.phys, &inst.venv, &ra.mapping, &spec).total_s;
        total += 1;
        if t_hmn <= t_ra {
            hmn_wins += 1;
        }
    }
    assert!(total >= 3, "not enough mappable reps");
    assert!(
        hmn_wins * 2 > total,
        "HMN's balanced mappings should usually run experiments faster ({hmn_wins}/{total})"
    );
}

#[test]
fn colocation_eliminates_network_time() {
    // A two-guest chain mapped by HMN co-locates the pair; the simulated
    // experiment then spends zero time in the network phase.
    let phys = PhysicalTopology::from_shape(
        &generators::line(2),
        std::iter::repeat(HostSpec::new(
            Mips(2000.0),
            MemMb::from_gb(2),
            StorGb(1000.0),
        )),
        LinkSpec::new(Kbps(1000.0), Millis(5.0)),
        VmmOverhead::NONE,
    );
    let mut venv = VirtualEnvironment::new();
    let a = venv.add_guest(GuestSpec::new(Mips(75.0), MemMb(192), StorGb(100.0)));
    let b = venv.add_guest(GuestSpec::new(Mips(75.0), MemMb(192), StorGb(100.0)));
    venv.add_link(a, b, VLinkSpec::new(Kbps(750.0), Millis(45.0)));
    let mut rng = SmallRng::seed_from_u64(1);
    // Migration would split this degenerate 2-guest pair for a tiny
    // balance gain; disable it to test the co-location path in isolation.
    let out = Hmn::with_config(HmnConfig {
        migration: MigrationPolicy::Off,
        ..Default::default()
    })
    .map(&phys, &venv, &mut rng)
    .expect("maps");
    assert_eq!(out.mapping.host_of(a), out.mapping.host_of(b));
    let sim = run_experiment(&phys, &venv, &out.mapping, &ExperimentSpec::default());
    assert!(sim.network_s.abs() < 1e-9);
}
