//! Determinism contract of the epoch-parallel exact oracle, on random
//! instances:
//!
//! 1. **Thread-count invariance** — the epoch engine at 1, 4 and 8
//!    threads produces *bit-identical* verdicts: status, certified lower
//!    bound (`to_bits`), incumbent objective and placement, and every
//!    search counter except `nodes_stolen` (which tallies the item→worker
//!    striping and is the one deliberately thread-count-variant counter).
//!    This holds under truncating node budgets too — the budget is
//!    enforced at epoch grain, identically for every worker count.
//! 2. **Engine agreement** — the sequential DFS (`threads: 0`) and the
//!    epoch engine explore in different orders, so their effort counters
//!    may differ, but both are exact: same status, and certified
//!    objectives/bounds equal up to `EPSILON`.
//!
//! The vendored proptest shim has no automatic failure persistence;
//! `regression_seeds_replay` replays the seeds pinned in
//! `proptest-regressions/exact_parallel.txt` on every `cargo test`,
//! mirroring the harness of `bound_dominance.rs`.

use emumap::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const EPS: f64 = 1e-9;

type Case = (PhysicalTopology, VirtualEnvironment);

/// A random heterogeneous instance small enough for the full search to
/// finish in milliseconds but large enough (up to 4 hosts × 6 guests)
/// for the frontier to span several epochs at a small epoch size.
fn build_case(hosts: usize, topo: usize, guests: usize, density: f64, seed: u64) -> Case {
    let mut rng = SmallRng::seed_from_u64(seed);
    let shape = match topo {
        0 => generators::ring(hosts),
        1 => generators::line(hosts),
        _ => generators::switched_cascade(hosts, 8),
    };
    let specs: Vec<HostSpec> = (0..hosts)
        .map(|_| {
            HostSpec::new(
                Mips(rng.gen_range(500.0..3000.0)),
                MemMb(rng.gen_range(512..2048)),
                StorGb(rng.gen_range(100.0..1000.0)),
            )
        })
        .collect();
    let phys = PhysicalTopology::from_shape(
        &shape,
        specs.into_iter(),
        LinkSpec::new(Kbps(10_000.0), Millis(5.0)),
        VmmOverhead::NONE,
    );
    let spec = VirtualEnvSpec {
        guests,
        density,
        mem_mb: Range::new(64.0, 900.0),
        stor_gb: Range::new(10.0, 120.0),
        cpu_mips: Range::new(50.0, 800.0),
        bw_kbps: Range::new(50.0, 500.0),
        lat_ms: Range::new(10.0, 60.0),
        distribution: Distribution::Uniform,
    };
    let venv = spec.generate(&mut rng);
    (phys, venv)
}

fn arb_case() -> impl Strategy<Value = Case> {
    (
        2usize..=4,   // hosts
        0usize..3,    // topology selector
        2usize..=6,   // guests
        0.0f64..0.6,  // density
        any::<u64>(), // seed
    )
        .prop_map(|(hosts, topo, guests, density, seed)| {
            build_case(hosts, topo, guests, density, seed)
        })
}

/// The stats with the one thread-count-variant counter masked out.
fn invariant_stats(s: &ExactStats) -> ExactStats {
    ExactStats {
        nodes_stolen: 0,
        ..*s
    }
}

fn solve_at(
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
    config: ExactConfig,
) -> ExactOutcome {
    let mut cache = MapCache::new();
    solve_exact_with(phys, venv, &config, &mut cache, &[])
}

/// Bit-equality of two outcomes modulo `nodes_stolen`.
fn assert_bit_identical(a: &ExactOutcome, b: &ExactOutcome, label: &str) {
    assert_eq!(a.status, b.status, "{label}: status diverged");
    assert_eq!(
        a.lower_bound.to_bits(),
        b.lower_bound.to_bits(),
        "{label}: lower bound diverged ({} vs {})",
        a.lower_bound,
        b.lower_bound
    );
    match (&a.best, &b.best) {
        (Some(x), Some(y)) => {
            assert_eq!(
                x.objective.to_bits(),
                y.objective.to_bits(),
                "{label}: incumbent objective diverged"
            );
            assert_eq!(
                x.mapping.placement(),
                y.mapping.placement(),
                "{label}: incumbent placement diverged"
            );
        }
        (None, None) => {}
        _ => panic!("{label}: one thread count found a mapping, the other did not"),
    }
    assert_eq!(
        invariant_stats(&a.stats),
        invariant_stats(&b.stats),
        "{label}: counters diverged"
    );
}

fn thread_invariance_check(phys: &PhysicalTopology, venv: &VirtualEnvironment) {
    // Full search: verdicts at 4 and 8 threads must be bit-identical to
    // 1 thread.
    let full = |threads| {
        solve_at(
            phys,
            venv,
            ExactConfig {
                threads,
                ..Default::default()
            },
        )
    };
    let one = full(1);
    assert_bit_identical(&one, &full(4), "full/4t");
    assert_bit_identical(&one, &full(8), "full/8t");

    // Truncating budget with a tiny epoch: the budget is enforced at
    // epoch grain, so the cut must land identically at every count.
    let truncated = |threads| {
        solve_at(
            phys,
            venv,
            ExactConfig {
                threads,
                max_nodes: 9,
                epoch_nodes: 4,
                ..Default::default()
            },
        )
    };
    let one = truncated(1);
    assert_bit_identical(&one, &truncated(4), "truncated/4t");
    assert_bit_identical(&one, &truncated(8), "truncated/8t");
}

fn engine_agreement_check(phys: &PhysicalTopology, venv: &VirtualEnvironment) {
    let dfs = solve_at(phys, venv, ExactConfig::default());
    let epoch = solve_at(
        phys,
        venv,
        ExactConfig {
            threads: 4,
            ..Default::default()
        },
    );
    assert_eq!(
        dfs.status, epoch.status,
        "engines disagree on the verdict: {:?} vs {:?}",
        dfs.status, epoch.status
    );
    match (&dfs.best, &epoch.best) {
        (Some(a), Some(b)) => {
            assert!(
                (a.objective - b.objective).abs() <= EPS,
                "certified objectives diverged: {} vs {}",
                a.objective,
                b.objective
            );
        }
        (None, None) => {}
        _ => panic!("engines disagree on feasibility"),
    }
    match (dfs.lower_bound.is_finite(), epoch.lower_bound.is_finite()) {
        (true, true) => assert!(
            (dfs.lower_bound - epoch.lower_bound).abs() <= EPS,
            "certified bounds diverged: {} vs {}",
            dfs.lower_bound,
            epoch.lower_bound
        ),
        (false, false) => {}
        _ => panic!(
            "one engine certified a finite bound, the other did not: {} vs {}",
            dfs.lower_bound, epoch.lower_bound
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_oracle_is_thread_count_invariant((phys, venv) in arb_case()) {
        thread_invariance_check(&phys, &venv);
    }

    #[test]
    fn parallel_oracle_agrees_with_sequential_dfs((phys, venv) in arb_case()) {
        engine_agreement_check(&phys, &venv);
    }
}

/// Replays every seed pinned in
/// `proptest-regressions/exact_parallel.txt` (the shim has no automatic
/// persistence, so this file is the regression memory).
#[test]
fn regression_seeds_replay() {
    let pinned = include_str!("../proptest-regressions/exact_parallel.txt");
    let mut replayed = 0u32;
    for line in pinned.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        assert_eq!(parts.next(), Some("cc"), "bad regression line: {line}");
        let name = parts
            .next()
            .unwrap_or_else(|| panic!("missing test name in: {line}"));
        let seed_tok = parts
            .next()
            .unwrap_or_else(|| panic!("missing seed in: {line}"));
        let seed = u64::from_str_radix(seed_tok.trim_start_matches("0x"), 16)
            .unwrap_or_else(|e| panic!("bad seed {seed_tok}: {e}"));

        let mut rng = SmallRng::seed_from_u64(seed);
        match name {
            "parallel_oracle_is_thread_count_invariant" => {
                let (phys, venv) = arb_case().generate(&mut rng);
                thread_invariance_check(&phys, &venv);
            }
            "parallel_oracle_agrees_with_sequential_dfs" => {
                let (phys, venv) = arb_case().generate(&mut rng);
                engine_agreement_check(&phys, &venv);
            }
            other => panic!("regression file pins unknown test '{other}'"),
        }
        replayed += 1;
    }
    assert!(replayed > 0, "regression file pinned no cases");
}
