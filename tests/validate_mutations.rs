//! Mutation tests for the validator: start from a mapping proven valid
//! (`validate_mapping == Ok`), corrupt it along exactly one axis of the
//! paper's constraint system, and assert the validator reports the
//! matching [`Violation`] variant — naming the violated equation in its
//! `Display` output. A validator that accepts any of these corruptions
//! would also let a buggy mapper ship them, so each mutation here is one
//! guaranteed-detectable defect class.

use emumap::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Uniform ring of `n` hosts (each hop 5 ms, 1000 kbps).
fn phys_ring(n: usize) -> PhysicalTopology {
    PhysicalTopology::from_shape(
        &emumap::graph::generators::ring(n),
        std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(1024), StorGb(100.0))),
        LinkSpec::new(Kbps(1000.0), Millis(5.0)),
        VmmOverhead::NONE,
    )
}

/// Two guests joined by one virtual link.
fn venv_pair(spec: GuestSpec, bw: f64, lat: f64) -> VirtualEnvironment {
    let mut v = VirtualEnvironment::new();
    let a = v.add_guest(spec);
    let b = v.add_guest(spec);
    v.add_link(a, b, VLinkSpec::new(Kbps(bw), Millis(lat)));
    v
}

fn edge(p: &PhysicalTopology, a: usize, b: usize) -> EdgeId {
    p.graph()
        .find_edge(p.hosts()[a], p.hosts()[b])
        .expect("edge exists in the ring")
}

/// Asserts that validating `mutant` yields a violation matched by
/// `matches`, and that its Display names `equation`; returns the message.
fn assert_violation(
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
    mutant: &Mapping,
    equation: &str,
    matches: impl Fn(&Violation) -> bool,
) -> String {
    let errs =
        validate_mapping(phys, venv, mutant).expect_err("the corrupted mapping must not validate");
    let hit = errs
        .iter()
        .find(|v| matches(v))
        .unwrap_or_else(|| panic!("expected violation for {equation}, got {errs:?}"));
    // Satellite of the same PR: Violation is a std::error::Error whose
    // message names the violated equation.
    let err: &dyn std::error::Error = hit;
    let msg = err.to_string();
    assert!(msg.contains(equation), "{msg:?} should name {equation}");
    msg
}

/// The route-axis fixture: guests two hops apart on a 5-ring with a
/// latency bound that admits the short way (2 hops, 10 ms) but not the
/// long way (3 hops, 15 ms).
fn route_fixture() -> (PhysicalTopology, VirtualEnvironment, Mapping) {
    let p = phys_ring(5);
    let v = venv_pair(
        GuestSpec::new(Mips(10.0), MemMb(128), StorGb(10.0)),
        200.0,
        12.0,
    );
    // a on h0, b on h2; route the short way h0 -> h1 -> h2 (10 ms <= 12).
    let m = Mapping::new(
        vec![p.hosts()[0], p.hosts()[2]],
        vec![Route::new(vec![edge(&p, 0, 1), edge(&p, 1, 2)])],
    );
    assert_eq!(
        validate_mapping(&p, &v, &m),
        Ok(()),
        "fixture must be valid"
    );
    (p, v, m)
}

#[test]
fn eq1_truncated_placement_is_detected() {
    let (p, v, m) = route_fixture();
    let mut placement = m.placement().to_vec();
    placement.pop();
    let mutant = Mapping::new(placement, m.routes().to_vec());
    assert_violation(&p, &v, &mutant, "Eq. 1", |e| {
        matches!(
            e,
            Violation::PlacementSizeMismatch {
                expected: 2,
                actual: 1
            }
        )
    });
}

#[test]
fn eq1_guest_on_nonexistent_node_is_detected() {
    let (p, v, m) = route_fixture();
    let mut placement = m.placement().to_vec();
    placement[1] = NodeId::from_index(999);
    let mutant = Mapping::new(placement, m.routes().to_vec());
    assert_violation(&p, &v, &mutant, "Eq. 1", |e| {
        matches!(e, Violation::MappedToNonHost { guest: 1, .. })
    });
}

#[test]
fn eq2_cohosting_past_memory_capacity_is_detected() {
    // 600 MB guests on 1024 MB hosts: valid only when separated. HMN's
    // own mapping is the known-good baseline here — memory forces it to
    // split the pair.
    let p = phys_ring(4);
    let v = venv_pair(
        GuestSpec::new(Mips(10.0), MemMb(600), StorGb(10.0)),
        200.0,
        20.0,
    );
    let mut rng = SmallRng::seed_from_u64(1);
    let good = Hmn::new()
        .map(&p, &v, &mut rng)
        .expect("HMN maps the pair")
        .mapping;
    assert_eq!(validate_mapping(&p, &v, &good), Ok(()));
    assert_ne!(
        good.host_of(GuestId::from_index(0)),
        good.host_of(GuestId::from_index(1))
    );

    let host = good.host_of(GuestId::from_index(0));
    let mutant = Mapping::new(vec![host, host], good.routes().to_vec());
    assert_violation(&p, &v, &mutant, "Eq. 2", |e| {
        matches!(
            e,
            Violation::MemoryExceeded {
                demanded: 1200,
                capacity: 1024,
                ..
            }
        )
    });
}

#[test]
fn eq3_cohosting_past_storage_capacity_is_detected() {
    // 80 GB guests on 100 GB hosts: memory is roomy, storage forces the
    // split.
    let p = phys_ring(4);
    let v = venv_pair(
        GuestSpec::new(Mips(10.0), MemMb(64), StorGb(80.0)),
        200.0,
        20.0,
    );
    let mut rng = SmallRng::seed_from_u64(1);
    let good = Hmn::new()
        .map(&p, &v, &mut rng)
        .expect("HMN maps the pair")
        .mapping;
    assert_eq!(validate_mapping(&p, &v, &good), Ok(()));

    let host = good.host_of(GuestId::from_index(0));
    let mutant = Mapping::new(vec![host, host], good.routes().to_vec());
    assert_violation(&p, &v, &mutant, "Eq. 3", |e| {
        matches!(e, Violation::StorageExceeded { .. })
    });
}

#[test]
fn eq4_5_missing_route_is_detected() {
    let (p, v, m) = route_fixture();
    let mutant = Mapping::new(m.placement().to_vec(), vec![]);
    assert_violation(&p, &v, &mutant, "Eqs. 4-5", |e| {
        matches!(
            e,
            Violation::RouteTableSizeMismatch {
                expected: 1,
                actual: 0
            }
        )
    });
}

#[test]
fn eq4_5_inter_host_link_with_empty_route_is_detected() {
    let (p, v, m) = route_fixture();
    let mutant = Mapping::new(m.placement().to_vec(), vec![Route::intra_host()]);
    assert_violation(&p, &v, &mutant, "Eqs. 4-5", |e| {
        matches!(e, Violation::IntraHostMismatch { .. })
    });
}

#[test]
fn eq4_6_route_not_chaining_from_source_is_detected() {
    let (p, v, _) = route_fixture();
    // h1 -> h2 only: never touches the source host h0.
    let mutant = Mapping::new(
        vec![p.hosts()[0], p.hosts()[2]],
        vec![Route::new(vec![edge(&p, 1, 2)])],
    );
    assert_violation(&p, &v, &mutant, "Eqs. 4/6", |e| {
        matches!(e, Violation::RouteDiscontinuous { .. })
    });
}

#[test]
fn eq5_route_stopping_short_is_detected() {
    let (p, v, _) = route_fixture();
    // h0 -> h1 stops one hop before the destination h2.
    let mutant = Mapping::new(
        vec![p.hosts()[0], p.hosts()[2]],
        vec![Route::new(vec![edge(&p, 0, 1)])],
    );
    assert_violation(&p, &v, &mutant, "Eq. 5", |e| {
        matches!(e, Violation::RouteWrongDestination { .. })
    });
}

#[test]
fn eq7_route_revisiting_a_node_is_detected() {
    let (p, v, _) = route_fixture();
    // h0 -> h1 -> h0 -> h4 -> h3 -> h2: reaches the right destination but
    // revisits h0 on the way; the loop check must fire.
    let mutant = Mapping::new(
        vec![p.hosts()[0], p.hosts()[2]],
        vec![Route::new(vec![
            edge(&p, 0, 1),
            edge(&p, 1, 0),
            edge(&p, 0, 4),
            edge(&p, 4, 3),
            edge(&p, 3, 2),
        ])],
    );
    assert_violation(&p, &v, &mutant, "Eq. 7", |e| {
        matches!(e, Violation::RouteHasLoop { .. })
    });
}

#[test]
fn eq8_rerouting_past_the_latency_bound_is_detected() {
    let (p, v, _) = route_fixture();
    // The long way round (h0 -> h4 -> h3 -> h2, 15 ms) busts the 12 ms
    // bound; destination, continuity and loop-freedom all stay intact, so
    // Eq. 8 is the only possible report.
    let mutant = Mapping::new(
        vec![p.hosts()[0], p.hosts()[2]],
        vec![Route::new(vec![
            edge(&p, 0, 4),
            edge(&p, 4, 3),
            edge(&p, 3, 2),
        ])],
    );
    let msg = assert_violation(&p, &v, &mutant, "Eq. 8", |e| {
        matches!(
            e,
            Violation::LatencyExceeded { total, bound, .. }
                if (*total - 15.0).abs() < 1e-9 && *bound == 12.0
        )
    });
    assert!(msg.contains("12"), "reports the bound: {msg}");
}

#[test]
fn eq9_stacking_links_past_bandwidth_capacity_is_detected() {
    // Two 600 kbps virtual links over 1000 kbps edges: valid only on
    // edge-disjoint routes.
    let p = phys_ring(4);
    let mut v = VirtualEnvironment::new();
    let spec = GuestSpec::new(Mips(10.0), MemMb(64), StorGb(10.0));
    let a = v.add_guest(spec);
    let b = v.add_guest(spec);
    v.add_link(a, b, VLinkSpec::new(Kbps(600.0), Millis(100.0)));
    v.add_link(a, b, VLinkSpec::new(Kbps(600.0), Millis(100.0)));
    let short = Route::new(vec![edge(&p, 0, 1), edge(&p, 1, 2)]);
    let long = Route::new(vec![edge(&p, 0, 3), edge(&p, 3, 2)]);
    let good = Mapping::new(vec![p.hosts()[0], p.hosts()[2]], vec![short.clone(), long]);
    assert_eq!(
        validate_mapping(&p, &v, &good),
        Ok(()),
        "disjoint routes are valid"
    );

    // Corrupt: pile both links onto the same edges (1200 > 1000 kbps).
    let mutant = Mapping::new(good.placement().to_vec(), vec![short.clone(), short]);
    assert_violation(&p, &v, &mutant, "Eq. 9", |e| {
        matches!(
            e,
            Violation::BandwidthExceeded { demanded, capacity, .. }
                if *demanded == 1200.0 && *capacity == 1000.0
        )
    });
}

#[test]
fn every_equation_axis_is_covered_by_a_mutation() {
    // Meta-check: the suite above must keep one mutation per Display
    // prefix the validator can emit, so a new Violation variant without a
    // mutation test fails here (update both when extending Eqs.).
    let prefixes = [
        "Eq. 1", "Eq. 2", "Eq. 3", "Eqs. 4-5", "Eqs. 4/6", "Eq. 5", "Eq. 7", "Eq. 8", "Eq. 9",
    ];
    let source = include_str!("validate_mutations.rs");
    for p in prefixes {
        assert!(
            source.contains(&format!("\"{p}\"")),
            "no mutation test names {p}"
        );
    }
}
