//! Failure-path tests: undersized or hostile inputs must produce typed
//! errors, never panics or invalid mappings.

use emumap::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn small_phys(hosts: usize, mem: u64, bw: f64, lat: f64) -> PhysicalTopology {
    PhysicalTopology::from_shape(
        &generators::ring(hosts.max(1)),
        std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(mem), StorGb(100.0))),
        LinkSpec::new(Kbps(bw), Millis(lat)),
        VmmOverhead::NONE,
    )
}

fn pair_venv(mem: u64, bw: f64, lat: f64) -> VirtualEnvironment {
    let mut v = VirtualEnvironment::new();
    let a = v.add_guest(GuestSpec::new(Mips(10.0), MemMb(mem), StorGb(1.0)));
    let b = v.add_guest(GuestSpec::new(Mips(10.0), MemMb(mem), StorGb(1.0)));
    v.add_link(a, b, VLinkSpec::new(Kbps(bw), Millis(lat)));
    v
}

fn all_mappers() -> Vec<Box<dyn Mapper>> {
    vec![
        Box::new(Hmn::new()),
        Box::new(RandomDfs { max_attempts: 10 }),
        Box::new(RandomAStar {
            max_attempts: 10,
            ..Default::default()
        }),
        Box::new(HostingDfs { max_attempts: 10 }),
        Box::new(ConsolidatingHmn::default()),
    ]
}

#[test]
fn oversized_guests_fail_every_mapper_cleanly() {
    let phys = small_phys(4, 100, 1000.0, 5.0);
    let venv = pair_venv(500, 1.0, 100.0); // 500 MB guests on 100 MB hosts
    for mapper in all_mappers() {
        let mut rng = SmallRng::seed_from_u64(1);
        let err = mapper
            .map(&phys, &venv, &mut rng)
            .err()
            .unwrap_or_else(|| panic!("{} should have failed", mapper.name()));
        assert!(
            matches!(
                err,
                MapError::HostingFailed { .. } | MapError::RetriesExhausted { .. }
            ),
            "{}: unexpected error {err}",
            mapper.name()
        );
    }
}

#[test]
fn unroutable_bandwidth_fails_every_mapper_cleanly() {
    // Guests cannot co-locate (memory) and the only links are too narrow.
    let phys = small_phys(4, 120, 10.0, 5.0);
    let venv = pair_venv(100, 500.0, 100.0);
    for mapper in all_mappers() {
        let mut rng = SmallRng::seed_from_u64(2);
        let err = mapper
            .map(&phys, &venv, &mut rng)
            .err()
            .unwrap_or_else(|| panic!("{} should have failed", mapper.name()));
        assert!(
            matches!(
                err,
                MapError::NetworkingFailed { .. } | MapError::RetriesExhausted { .. }
            ),
            "{}: unexpected error {err}",
            mapper.name()
        );
    }
}

#[test]
fn impossible_latency_fails_cleanly() {
    // Latency bound below a single physical hop.
    let phys = small_phys(4, 120, 1000.0, 5.0);
    let venv = pair_venv(100, 1.0, 4.0);
    for mapper in all_mappers() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(
            mapper.map(&phys, &venv, &mut rng).is_err(),
            "{} should fail: no route can satisfy a 4 ms bound over 5 ms hops",
            mapper.name()
        );
    }
}

#[test]
fn empty_virtual_environment_maps_trivially() {
    let phys = small_phys(3, 1024, 1000.0, 5.0);
    let venv = VirtualEnvironment::new();
    for mapper in all_mappers() {
        let mut rng = SmallRng::seed_from_u64(4);
        let out = mapper
            .map(&phys, &venv, &mut rng)
            .unwrap_or_else(|e| panic!("{} failed on empty venv: {e}", mapper.name()));
        assert_eq!(out.mapping.guest_count(), 0);
        assert_eq!(validate_mapping(&phys, &venv, &out.mapping), Ok(()));
    }
}

#[test]
fn single_host_cluster_forces_colocation() {
    let phys = small_phys(1, 4096, 1000.0, 5.0);
    let venv = pair_venv(100, 1e9, 0.0); // impossible demands if routed
    for mapper in all_mappers() {
        let mut rng = SmallRng::seed_from_u64(5);
        let out = mapper
            .map(&phys, &venv, &mut rng)
            .unwrap_or_else(|e| panic!("{} failed: {e}", mapper.name()));
        // Both guests share the only host; the absurd link demands are
        // absorbed intra-host (Eq. bw(c,c) = infinity).
        assert_eq!(out.mapping.hosts_used(), 1);
        assert_eq!(validate_mapping(&phys, &venv, &out.mapping), Ok(()));
    }
}

#[test]
fn vmm_overhead_shrinks_usable_capacity() {
    // With overhead eating most memory, a guest that fits the raw spec no
    // longer fits the effective capacity.
    let shape = generators::ring(3);
    let vmm = VmmOverhead {
        proc: Mips(100.0),
        mem: MemMb(900),
        stor: StorGb(0.0),
    };
    let phys = PhysicalTopology::from_shape(
        &shape,
        std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(1024), StorGb(100.0))),
        LinkSpec::new(Kbps(1000.0), Millis(5.0)),
        vmm,
    );
    let venv = pair_venv(200, 1.0, 100.0); // 200 MB > 1024-900 effective
    let mut rng = SmallRng::seed_from_u64(6);
    assert!(Hmn::new().map(&phys, &venv, &mut rng).is_err());

    // Without the overhead the same instance maps fine.
    let phys_free = PhysicalTopology::from_shape(
        &shape,
        std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(1024), StorGb(100.0))),
        LinkSpec::new(Kbps(1000.0), Millis(5.0)),
        VmmOverhead::NONE,
    );
    let mut rng = SmallRng::seed_from_u64(6);
    assert!(Hmn::new().map(&phys_free, &venv, &mut rng).is_ok());
}

#[test]
fn guests_never_land_on_switches() {
    let cluster = ClusterSpec::paper();
    let scenario = Scenario {
        ratio: 10.0,
        density: 0.015,
        workload: WorkloadKind::HighLevel,
    };
    let inst = instantiate(&cluster, ClusterSpec::paper_switched(), &scenario, 0, 7);
    let mut rng = SmallRng::seed_from_u64(inst.mapper_seed);
    if let Ok(out) = Hmn::new().map(&inst.phys, &inst.venv, &mut rng) {
        for &host in out.mapping.placement() {
            assert!(inst.phys.is_host(host));
        }
    }
}
