//! Property tests for the incremental delta-evaluation engine: across long
//! random move/swap/revert sequences, the O(1) objective served by the
//! [`ObjectiveAccumulator`](emumap::model::ObjectiveAccumulator) and the
//! O(degree) inter-host bandwidth deltas must agree with a full recompute
//! at every step.
//!
//! Tolerances mirror the accumulator's own drift budget,
//! `1e-9 * (1 + |exact| + scale)` with `scale` the residual magnitude:
//! the mean-shifted Σ/Σ² representation rounds at the scale of the
//! squared deviations (residuals sit near host capacity ~10³), so a bound
//! relative only to a near-zero stddev would be unsatisfiable.

use emumap::mapping::PlacementState;
use emumap::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random uniform instance — same shape family as
/// `tests/property_mappings.rs`, a pure function of its inputs.
fn build_instance(
    hosts: usize,
    topo: usize,
    guests: usize,
    density: f64,
    seed: u64,
) -> (PhysicalTopology, VirtualEnvironment, u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let shape = match topo {
        0 => generators::ring(hosts),
        1 => generators::line(hosts),
        _ => generators::switched_cascade(hosts, 8),
    };
    let phys = PhysicalTopology::from_shape(
        &shape,
        std::iter::repeat(HostSpec::new(
            Mips(2000.0),
            MemMb::from_gb(2),
            StorGb(2000.0),
        )),
        LinkSpec::new(Kbps(10_000.0), Millis(5.0)),
        VmmOverhead::NONE,
    );
    let spec = VirtualEnvSpec {
        guests,
        density,
        mem_mb: Range::new(64.0, 256.0),
        stor_gb: Range::new(10.0, 50.0),
        cpu_mips: Range::new(20.0, 100.0),
        bw_kbps: Range::new(50.0, 500.0),
        lat_ms: Range::new(20.0, 80.0),
        distribution: Distribution::Uniform,
    };
    let venv = spec.generate(&mut rng);
    (phys, venv, seed)
}

fn arb_instance() -> impl Strategy<Value = (PhysicalTopology, VirtualEnvironment, u64)> {
    (
        2usize..10,   // hosts
        0usize..3,    // topology selector
        1usize..30,   // guests
        0.0f64..0.4,  // density
        any::<u64>(), // seed
    )
        .prop_map(|(hosts, topo, guests, density, seed)| {
            build_instance(hosts, topo, guests, density, seed)
        })
}

/// Number of random operations per sequence.
const OPS: usize = 1_000;

/// `|inc - exact| <= 1e-9 * (1 + |exact| + scale)` — the accumulator's
/// drift budget (`ObjectiveAccumulator::drift_budget`), with `scale` the
/// magnitude of the tracked data.
fn close(inc: f64, exact: f64, scale: f64) -> bool {
    (inc - exact).abs() <= 1e-9 * (1.0 + exact.abs() + scale)
}

/// Asserts the incremental bookkeeping against full recomputes: the
/// accumulator-served objective vs Eq. 10 over the residual vector, and
/// the delta-maintained inter-host bandwidth vs an O(links) rescan.
fn check_step(phys: &PhysicalTopology, st: &PlacementState<'_>, bw_tracked: f64, step: &str) {
    let residuals = st.residual().host_proc_residuals(phys);
    let scale = residuals.iter().fold(0.0f64, |m, r| m.max(r.abs()));
    let exact = objective::population_stddev(&residuals);
    let inc = st.objective();
    assert!(
        close(inc, exact, scale),
        "{step}: incremental objective {inc} drifted from exact {exact}"
    );
    let exact_bw = st.inter_host_bandwidth().value();
    assert!(
        close(bw_tracked, exact_bw, exact_bw.abs()),
        "{step}: tracked inter-host bandwidth {bw_tracked} drifted from exact {exact_bw}"
    );
}

/// One undoable operation, for the revert arm of the sequence.
#[derive(Clone, Copy)]
enum Op {
    Move { guest: GuestId, from: NodeId },
    Swap { a: GuestId, b: GuestId },
}

/// Drives `OPS` random moves, swaps, and reverts over a fully-assigned
/// placement, checking incremental-vs-full agreement after every single
/// mutation (including each step of the initial assignment).
fn delta_consistency_check(phys: &PhysicalTopology, venv: &VirtualEnvironment, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut st = PlacementState::new(phys, venv);
    let hosts = phys.hosts();

    // Initial placement: any fitting host, randomly. Instances too tight
    // to place fully just exercise a shorter prefix.
    for g in venv.guest_ids() {
        let fitting: Vec<NodeId> = hosts.iter().copied().filter(|&h| st.fits(g, h)).collect();
        let Some(&pick) = fitting.get(rng.gen_range(0..fitting.len().max(1))) else {
            return;
        };
        st.assign(g, pick).expect("candidate verified");
        let bw = st.inter_host_bandwidth().value(); // no assign delta API
        check_step(phys, &st, bw, "assign");
    }
    let guest_count = venv.guest_count();
    let mut bw_tracked = st.inter_host_bandwidth().value();
    let mut log: Vec<Op> = Vec::new();

    for i in 0..OPS {
        let roll = rng.gen_range(0..100u32);
        if roll < 45 {
            // Move a random guest to a random host (may be its own: the
            // no-op guard must keep both values bit-identical).
            let g = GuestId::from_index(rng.gen_range(0..guest_count));
            let to = hosts[rng.gen_range(0..hosts.len())];
            let from = st.host_of(g).expect("complete");
            if !st.fits(g, to) {
                continue;
            }
            let predicted_obj = st.objective_if_migrated(g, to);
            let bw_delta = st.inter_bandwidth_delta(g, to).value();
            st.migrate(g, to).expect("fit checked");
            bw_tracked += bw_delta;
            let scale = st
                .residual()
                .host_proc_residuals(phys)
                .iter()
                .fold(0.0f64, |m, r| m.max(r.abs()));
            assert!(
                close(predicted_obj, st.objective(), scale),
                "op {i}: objective_if_migrated predicted {predicted_obj}, got {}",
                st.objective()
            );
            if to != from {
                log.push(Op::Move { guest: g, from });
            }
            check_step(phys, &st, bw_tracked, "move");
        } else if roll < 75 {
            // Swap two random guests. There is no swap-delta probe, so the
            // tracked bandwidth re-syncs from a rescan here; the objective
            // accumulator still absorbs all four residual updates.
            let a = GuestId::from_index(rng.gen_range(0..guest_count));
            let b = GuestId::from_index(rng.gen_range(0..guest_count));
            if st.swap(a, b).is_err() {
                continue;
            }
            bw_tracked = st.inter_host_bandwidth().value();
            log.push(Op::Swap { a, b });
            check_step(phys, &st, bw_tracked, "swap");
        } else {
            // Revert the most recent op still on the log, through the same
            // delta paths as a forward move.
            let Some(op) = log.pop() else { continue };
            match op {
                Op::Move { guest, from } => {
                    if !st.fits(guest, from) {
                        continue; // someone else took the slot; skip
                    }
                    let bw_delta = st.inter_bandwidth_delta(guest, from).value();
                    st.migrate(guest, from).expect("fit checked");
                    bw_tracked += bw_delta;
                }
                Op::Swap { a, b } => {
                    if st.swap(a, b).is_err() {
                        continue; // state unchanged, tracking still valid
                    }
                    bw_tracked = st.inter_host_bandwidth().value();
                }
            }
            check_step(phys, &st, bw_tracked, "revert");
        }
    }

    // The sequence must have exercised the O(1)/O(degree) paths.
    assert!(
        guest_count == 0 || hosts.len() < 2 || st.delta_evaluations() > 0,
        "sequence of {OPS} ops never hit a delta path"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn incremental_energy_matches_full_recompute((phys, venv, seed) in arb_instance()) {
        delta_consistency_check(&phys, &venv, seed);
    }
}

/// Replays every seed pinned in
/// `proptest-regressions/delta_consistency.txt` (same manual-persistence
/// discipline as `tests/property_mappings.rs`: the shim has no automatic
/// regression file, so this test is the regression memory).
#[test]
fn regression_seeds_replay() {
    let pinned = include_str!("../proptest-regressions/delta_consistency.txt");
    let mut replayed = 0u32;
    for line in pinned.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        assert_eq!(parts.next(), Some("cc"), "bad regression line: {line}");
        let name = parts
            .next()
            .unwrap_or_else(|| panic!("missing test name in: {line}"));
        let seed_tok = parts
            .next()
            .unwrap_or_else(|| panic!("missing seed in: {line}"));
        let seed = u64::from_str_radix(seed_tok.trim_start_matches("0x"), 16)
            .unwrap_or_else(|e| panic!("bad seed {seed_tok}: {e}"));
        let mut rng = SmallRng::seed_from_u64(seed);
        match name {
            "incremental_energy_matches_full_recompute" => {
                let (phys, venv, s) = arb_instance().generate(&mut rng);
                delta_consistency_check(&phys, &venv, s);
            }
            other => panic!("regression file pins unknown test '{other}'"),
        }
        replayed += 1;
    }
    assert!(replayed > 0, "regression file pinned no cases");
}
