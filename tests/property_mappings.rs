//! Property-based integration tests: for arbitrary (feasible-ish) random
//! instances, every mapping any mapper returns must satisfy the paper's
//! formal model, and the stage-level invariants must hold.

use emumap::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A random small instance: cluster shape, host resources, guest count,
/// densityish links.
fn arb_instance() -> impl Strategy<Value = (PhysicalTopology, VirtualEnvironment, u64)> {
    (
        2usize..10,   // hosts
        0usize..3,    // topology selector
        1usize..30,   // guests
        0.0f64..0.4,  // density
        any::<u64>(), // seed
    )
        .prop_map(|(hosts, topo, guests, density, seed)| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let shape = match topo {
                0 => generators::ring(hosts),
                1 => generators::line(hosts),
                _ => generators::switched_cascade(hosts, 8),
            };
            let phys = PhysicalTopology::from_shape(
                &shape,
                std::iter::repeat(HostSpec::new(
                    Mips(2000.0),
                    MemMb::from_gb(2),
                    StorGb(2000.0),
                )),
                LinkSpec::new(Kbps(10_000.0), Millis(5.0)),
                VmmOverhead::NONE,
            );
            let spec = VirtualEnvSpec {
                guests,
                density,
                mem_mb: Range::new(64.0, 256.0),
                stor_gb: Range::new(10.0, 50.0),
                cpu_mips: Range::new(20.0, 100.0),
                bw_kbps: Range::new(50.0, 500.0),
                lat_ms: Range::new(20.0, 80.0),
                distribution: Distribution::Uniform,
            };
            let venv = spec.generate(&mut rng);
            (phys, venv, seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hmn_mappings_always_validate((phys, venv, seed) in arb_instance()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        if let Ok(out) = Hmn::new().map(&phys, &venv, &mut rng) {
            prop_assert_eq!(validate_mapping(&phys, &venv, &out.mapping), Ok(()));
            prop_assert!(out.objective.is_finite());
            prop_assert_eq!(
                out.stats.routed_links + out.stats.intra_host_links,
                venv.link_count()
            );
        }
    }

    #[test]
    fn baseline_mappings_always_validate((phys, venv, seed) in arb_instance()) {
        let mappers: Vec<Box<dyn Mapper>> = vec![
            Box::new(RandomDfs { max_attempts: 20 }),
            Box::new(RandomAStar { max_attempts: 20, ..Default::default() }),
            Box::new(HostingDfs { max_attempts: 20 }),
        ];
        for mapper in &mappers {
            let mut rng = SmallRng::seed_from_u64(seed);
            if let Ok(out) = mapper.map(&phys, &venv, &mut rng) {
                prop_assert_eq!(
                    validate_mapping(&phys, &venv, &out.mapping),
                    Ok(()),
                    "{} produced an invalid mapping", mapper.name()
                );
            }
        }
    }

    #[test]
    fn migration_never_worsens_the_objective((phys, venv, seed) in arb_instance()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let with = Hmn::new().map(&phys, &venv, &mut rng);
        let mut rng = SmallRng::seed_from_u64(seed);
        let without = Hmn::with_config(HmnConfig { migration: MigrationPolicy::Off, ..Default::default() })
            .map(&phys, &venv, &mut rng);
        if let (Ok(a), Ok(b)) = (with, without) {
            prop_assert!(a.objective <= b.objective + 1e-9);
        }
    }

    #[test]
    fn consolidation_never_uses_more_hosts((phys, venv, seed) in arb_instance()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let plain = Hmn::new().map(&phys, &venv, &mut rng);
        let mut rng = SmallRng::seed_from_u64(seed);
        let packed = ConsolidatingHmn::default().map(&phys, &venv, &mut rng);
        if let (Ok(a), Ok(b)) = (plain, packed) {
            prop_assert!(b.mapping.hosts_used() <= a.mapping.hosts_used());
            prop_assert_eq!(validate_mapping(&phys, &venv, &b.mapping), Ok(()));
        }
    }

    #[test]
    fn hmn_is_seed_independent((phys, venv, seed) in arb_instance()) {
        let a = Hmn::new().map(&phys, &venv, &mut SmallRng::seed_from_u64(seed));
        let b = Hmn::new().map(&phys, &venv, &mut SmallRng::seed_from_u64(seed ^ 0xdead_beef));
        match (a, b) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(x.mapping, y.mapping);
            }
            (Err(_), Err(_)) => {}
            (x, y) => prop_assert!(
                false,
                "HMN determinism broken: {:?} vs {:?}",
                x.map(|o| o.objective),
                y.map(|o| o.objective)
            ),
        }
    }

    #[test]
    fn experiment_runtime_is_positive_and_scales_with_rounds(
        (phys, venv, seed) in arb_instance()
    ) {
        prop_assume!(venv.guest_count() > 0);
        let mut rng = SmallRng::seed_from_u64(seed);
        if let Ok(out) = Hmn::new().map(&phys, &venv, &mut rng) {
            let one = run_experiment(
                &phys, &venv, &out.mapping,
                &ExperimentSpec { rounds: 1, ..Default::default() },
            );
            let three = run_experiment(
                &phys, &venv, &out.mapping,
                &ExperimentSpec { rounds: 3, ..Default::default() },
            );
            prop_assert!(one.total_s > 0.0);
            prop_assert!((three.total_s - 3.0 * one.total_s).abs() < 1e-6);
        }
    }

    #[test]
    fn hosting_cannot_fail_at_low_utilization((phys, venv, seed) in arb_instance()) {
        // At <= 60% aggregate memory utilization a first-fit fallback can
        // never strand a guest: if every host had less free memory than
        // the largest guest (256 MB), total free would be under
        // hosts x 256 MB, contradicting the 40% (~819 MB/host) slack.
        // (No such guarantee holds near 100% — greedy hosting can fail on
        // packable-but-tight instances; see the feasibility module.)
        let hosts: Vec<HostSpec> = phys
            .hosts()
            .iter()
            .map(|&h| *phys.host_spec(h))
            .collect();
        prop_assume!(emumap::workloads::memory_utilization(&hosts, &venv) <= 0.6);
        let mut rng = SmallRng::seed_from_u64(seed);
        match Hmn::new().map(&phys, &venv, &mut rng) {
            Ok(_) => {}
            Err(MapError::NetworkingFailed { .. }) => {} // routing may be tight
            Err(e) => prop_assert!(false, "hosting failed at low utilization: {e}"),
        }
    }
}
