//! Property-based integration tests: for arbitrary (feasible-ish) random
//! instances, every mapping any mapper returns must satisfy the paper's
//! formal model, and the stage-level invariants must hold.

use emumap::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Shared instance builder: a uniform cluster in one of three shapes and
/// a random virtual environment, all a pure function of the inputs.
fn build_instance(
    hosts: usize,
    topo: usize,
    guests: usize,
    density: f64,
    seed: u64,
) -> (PhysicalTopology, VirtualEnvironment, u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let shape = match topo {
        0 => generators::ring(hosts),
        1 => generators::line(hosts),
        _ => generators::switched_cascade(hosts, 8),
    };
    let phys = PhysicalTopology::from_shape(
        &shape,
        std::iter::repeat(HostSpec::new(
            Mips(2000.0),
            MemMb::from_gb(2),
            StorGb(2000.0),
        )),
        LinkSpec::new(Kbps(10_000.0), Millis(5.0)),
        VmmOverhead::NONE,
    );
    let spec = VirtualEnvSpec {
        guests,
        density,
        mem_mb: Range::new(64.0, 256.0),
        stor_gb: Range::new(10.0, 50.0),
        cpu_mips: Range::new(20.0, 100.0),
        bw_kbps: Range::new(50.0, 500.0),
        lat_ms: Range::new(20.0, 80.0),
        distribution: Distribution::Uniform,
    };
    let venv = spec.generate(&mut rng);
    (phys, venv, seed)
}

/// A random small instance: cluster shape, host resources, guest count,
/// densityish links.
fn arb_instance() -> impl Strategy<Value = (PhysicalTopology, VirtualEnvironment, u64)> {
    (
        2usize..10,   // hosts
        0usize..3,    // topology selector
        1usize..30,   // guests
        0.0f64..0.4,  // density
        any::<u64>(), // seed
    )
        .prop_map(|(hosts, topo, guests, density, seed)| {
            build_instance(hosts, topo, guests, density, seed)
        })
}

/// Oracle-sized instances: the exact search is exponential in the guest
/// count, so the differential suite stays at ≤ 8 hosts and ≤ 10 guests.
fn arb_small_instance() -> impl Strategy<Value = (PhysicalTopology, VirtualEnvironment, u64)> {
    (
        2usize..=8,   // hosts
        0usize..3,    // topology selector
        1usize..=10,  // guests
        0.0f64..0.4,  // density
        any::<u64>(), // seed
    )
        .prop_map(|(hosts, topo, guests, density, seed)| {
            build_instance(hosts, topo, guests, density, seed)
        })
}

const EPS: f64 = 1e-9;

/// Node budget for oracle calls inside the property suite: enough to
/// certify most oracle-sized instances, small enough that 256 cases stay
/// fast. Truncated outcomes are tolerated (the bound is still sound).
fn oracle_config() -> ExactConfig {
    ExactConfig {
        max_nodes: 20_000,
        ..Default::default()
    }
}

/// The differential invariants between the heuristics and the exact
/// oracle, as plain asserts so the pinned-seed replay test can reuse it
/// (the proptest harness reports the failing seed either way):
///
/// 1. every successful mapping validates against Eqs. 1–9;
/// 2. the oracle never reports infeasible when any mapper succeeded;
/// 3. no heuristic beats the oracle's incumbent (structural — successes
///    are seeded as witnesses — so a failure implicates the objective or
///    the validator, not just the search);
/// 4. no heuristic objective undercuts the certified lower bound.
///
/// Every mapper in the registry runs — the coverage is `MAPPERS` itself,
/// so a newly registered mapper is differentially tested against the
/// oracle without touching this file.
fn differential_check(phys: &PhysicalTopology, venv: &VirtualEnvironment, seed: u64) {
    let config = MapperConfig { max_attempts: 20 };
    let mappers: Vec<Box<dyn Mapper>> = MAPPERS.iter().map(|e| (e.build)(&config)).collect();
    let mut witnesses = Vec::new();
    let mut objectives = Vec::new();
    for mapper in &mappers {
        let mut rng = SmallRng::seed_from_u64(seed);
        if let Ok(out) = mapper.map(phys, venv, &mut rng) {
            assert_eq!(
                validate_mapping(phys, venv, &out.mapping),
                Ok(()),
                "{} produced an invalid mapping",
                mapper.name()
            );
            witnesses.push(out.mapping);
            objectives.push((mapper.name().to_string(), out.objective));
        }
    }

    let mut cache = MapCache::new();
    let outcome = solve_exact_with(phys, venv, &oracle_config(), &mut cache, &witnesses);

    if !witnesses.is_empty() {
        assert_ne!(
            outcome.status,
            ExactStatus::Infeasible,
            "oracle certifies infeasible but {} mapper(s) succeeded",
            witnesses.len()
        );
    }
    if let Some(best) = &outcome.best {
        assert_eq!(
            validate_mapping(phys, venv, &best.mapping),
            Ok(()),
            "the oracle's own mapping is invalid"
        );
        for (name, obj) in &objectives {
            assert!(
                *obj >= best.objective - EPS,
                "{name} objective {obj} beats the oracle incumbent {}",
                best.objective
            );
        }
    }
    if outcome.lower_bound.is_finite() {
        for (name, obj) in &objectives {
            assert!(
                *obj >= outcome.lower_bound - EPS,
                "{name} objective {obj} undercuts the certified lower bound {}",
                outcome.lower_bound
            );
        }
    }
}

/// Cold oracle (no heuristic incumbents) vs HMN: a certified optimum is
/// a floor under HMN, and certified infeasibility means HMN must have
/// failed too. Truncated runs assert nothing — their bound is exercised
/// by [`differential_check`].
fn admissibility_check(phys: &PhysicalTopology, venv: &VirtualEnvironment, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let hmn = Hmn::new().map(phys, venv, &mut rng);
    let outcome = solve_exact(phys, venv, &oracle_config());
    match outcome.status {
        ExactStatus::Optimal => {
            let best = outcome.best.as_ref().expect("Optimal implies an incumbent");
            if let Ok(out) = &hmn {
                assert!(
                    out.objective >= best.objective - EPS,
                    "HMN objective {} beats the certified optimum {}",
                    out.objective,
                    best.objective
                );
            }
        }
        ExactStatus::Infeasible => {
            assert!(
                hmn.is_err(),
                "oracle certifies infeasible but HMN mapped the instance"
            );
        }
        ExactStatus::Truncated => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hmn_mappings_always_validate((phys, venv, seed) in arb_instance()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        if let Ok(out) = Hmn::new().map(&phys, &venv, &mut rng) {
            prop_assert_eq!(validate_mapping(&phys, &venv, &out.mapping), Ok(()));
            prop_assert!(out.objective.is_finite());
            prop_assert_eq!(
                out.stats.routed_links + out.stats.intra_host_links,
                venv.link_count()
            );
        }
    }

    #[test]
    fn baseline_mappings_always_validate((phys, venv, seed) in arb_instance()) {
        let mappers: Vec<Box<dyn Mapper>> = vec![
            Box::new(RandomDfs { max_attempts: 20 }),
            Box::new(RandomAStar { max_attempts: 20, ..Default::default() }),
            Box::new(HostingDfs { max_attempts: 20 }),
            Box::new(RandomizedRounding::with_config(RoundingConfig {
                max_attempts: 20,
                ..Default::default()
            })),
        ];
        for mapper in &mappers {
            let mut rng = SmallRng::seed_from_u64(seed);
            if let Ok(out) = mapper.map(&phys, &venv, &mut rng) {
                prop_assert_eq!(
                    validate_mapping(&phys, &venv, &out.mapping),
                    Ok(()),
                    "{} produced an invalid mapping", mapper.name()
                );
            }
        }
    }

    #[test]
    fn migration_never_worsens_the_objective((phys, venv, seed) in arb_instance()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let with = Hmn::new().map(&phys, &venv, &mut rng);
        let mut rng = SmallRng::seed_from_u64(seed);
        let without = Hmn::with_config(HmnConfig { migration: MigrationPolicy::Off, ..Default::default() })
            .map(&phys, &venv, &mut rng);
        if let (Ok(a), Ok(b)) = (with, without) {
            prop_assert!(a.objective <= b.objective + 1e-9);
        }
    }

    #[test]
    fn consolidation_never_uses_more_hosts((phys, venv, seed) in arb_instance()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let plain = Hmn::new().map(&phys, &venv, &mut rng);
        let mut rng = SmallRng::seed_from_u64(seed);
        let packed = ConsolidatingHmn::default().map(&phys, &venv, &mut rng);
        if let (Ok(a), Ok(b)) = (plain, packed) {
            prop_assert!(b.mapping.hosts_used() <= a.mapping.hosts_used());
            prop_assert_eq!(validate_mapping(&phys, &venv, &b.mapping), Ok(()));
        }
    }

    #[test]
    fn hmn_is_seed_independent((phys, venv, seed) in arb_instance()) {
        let a = Hmn::new().map(&phys, &venv, &mut SmallRng::seed_from_u64(seed));
        let b = Hmn::new().map(&phys, &venv, &mut SmallRng::seed_from_u64(seed ^ 0xdead_beef));
        match (a, b) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(x.mapping, y.mapping);
            }
            (Err(_), Err(_)) => {}
            (x, y) => prop_assert!(
                false,
                "HMN determinism broken: {:?} vs {:?}",
                x.map(|o| o.objective),
                y.map(|o| o.objective)
            ),
        }
    }

    #[test]
    fn experiment_runtime_is_positive_and_scales_with_rounds(
        (phys, venv, seed) in arb_instance()
    ) {
        prop_assume!(venv.guest_count() > 0);
        let mut rng = SmallRng::seed_from_u64(seed);
        if let Ok(out) = Hmn::new().map(&phys, &venv, &mut rng) {
            let one = run_experiment(
                &phys, &venv, &out.mapping,
                &ExperimentSpec { rounds: 1, ..Default::default() },
            );
            let three = run_experiment(
                &phys, &venv, &out.mapping,
                &ExperimentSpec { rounds: 3, ..Default::default() },
            );
            prop_assert!(one.total_s > 0.0);
            prop_assert!((three.total_s - 3.0 * one.total_s).abs() < 1e-6);
        }
    }

    #[test]
    fn heuristics_agree_with_the_exact_oracle((phys, venv, seed) in arb_small_instance()) {
        differential_check(&phys, &venv, seed);
    }

    #[test]
    fn oracle_bound_is_admissible_without_witnesses((phys, venv, seed) in arb_small_instance()) {
        admissibility_check(&phys, &venv, seed);
    }

    #[test]
    fn hosting_cannot_fail_at_low_utilization((phys, venv, seed) in arb_instance()) {
        // At <= 60% aggregate memory utilization a first-fit fallback can
        // never strand a guest: if every host had less free memory than
        // the largest guest (256 MB), total free would be under
        // hosts x 256 MB, contradicting the 40% (~819 MB/host) slack.
        // (No such guarantee holds near 100% — greedy hosting can fail on
        // packable-but-tight instances; see the feasibility module.)
        let hosts: Vec<HostSpec> = phys
            .hosts()
            .iter()
            .map(|&h| *phys.host_spec(h))
            .collect();
        prop_assume!(emumap::workloads::memory_utilization(&hosts, &venv) <= 0.6);
        let mut rng = SmallRng::seed_from_u64(seed);
        match Hmn::new().map(&phys, &venv, &mut rng) {
            Ok(_) => {}
            Err(MapError::NetworkingFailed { .. }) => {} // routing may be tight
            Err(e) => prop_assert!(false, "hosting failed at low utilization: {e}"),
        }
    }
}

/// Replays every seed pinned in `proptest-regressions/property_mappings.txt`
/// through the property it once failed (or was pinned to guard). The shim
/// has no automatic persistence, so this test is the regression memory:
/// once a seed is in the file, the case runs on every `cargo test`.
#[test]
fn regression_seeds_replay() {
    let pinned = include_str!("../proptest-regressions/property_mappings.txt");
    let mut replayed = 0u32;
    for line in pinned.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        assert_eq!(parts.next(), Some("cc"), "bad regression line: {line}");
        let name = parts
            .next()
            .unwrap_or_else(|| panic!("missing test name in: {line}"));
        let seed_tok = parts
            .next()
            .unwrap_or_else(|| panic!("missing seed in: {line}"));
        let seed = u64::from_str_radix(seed_tok.trim_start_matches("0x"), 16)
            .unwrap_or_else(|e| panic!("bad seed {seed_tok}: {e}"));

        // Regenerate the instance exactly as the named proptest would:
        // its strategy drawn from an RNG seeded with the pinned seed.
        let mut rng = SmallRng::seed_from_u64(seed);
        match name {
            "heuristics_agree_with_the_exact_oracle" => {
                let (phys, venv, s) = arb_small_instance().generate(&mut rng);
                differential_check(&phys, &venv, s);
            }
            "oracle_bound_is_admissible_without_witnesses" => {
                let (phys, venv, s) = arb_small_instance().generate(&mut rng);
                admissibility_check(&phys, &venv, s);
            }
            "hmn_mappings_always_validate" => {
                let (phys, venv, s) = arb_instance().generate(&mut rng);
                let mut r = SmallRng::seed_from_u64(s);
                if let Ok(out) = Hmn::new().map(&phys, &venv, &mut r) {
                    assert_eq!(validate_mapping(&phys, &venv, &out.mapping), Ok(()));
                }
            }
            other => panic!("regression file pins unknown test '{other}'"),
        }
        replayed += 1;
    }
    assert!(replayed > 0, "regression file pinned no cases");
}
