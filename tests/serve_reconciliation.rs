//! Property tests for the `emumap serve` session engine: after ANY
//! sequence of tenant arrivals and departures, the session's residual
//! cluster state must be **bitwise identical** to a from-scratch rebuild
//! of just the surviving tenants — no float drift, no leaked capacity,
//! regardless of the order embeddings were applied and released in.
//!
//! This is the invariant the daemon's canonical-resync discipline exists
//! to provide (see DESIGN.md): residuals are a pure function of the
//! surviving tenant *set*, so equality here is exact `==` on every
//! capacity column, not a tolerance check.

use emumap::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Uniform-random cluster — same shape family as
/// `tests/delta_consistency.rs`, a pure function of its inputs.
fn build_phys(hosts: usize, topo: usize) -> PhysicalTopology {
    let shape = match topo {
        0 => generators::ring(hosts),
        1 => generators::torus2d(2, hosts.div_ceil(2)),
        _ => generators::switched_cascade(hosts, 8),
    };
    PhysicalTopology::from_shape(
        &shape,
        std::iter::repeat(HostSpec::new(
            Mips(2000.0),
            MemMb::from_gb(2),
            StorGb(2000.0),
        )),
        LinkSpec::new(Kbps(10_000.0), Millis(5.0)),
        VmmOverhead::NONE,
    )
}

fn arb_instance() -> impl Strategy<Value = (usize, usize, u64)> {
    (
        4usize..12,   // hosts
        0usize..3,    // topology selector
        any::<u64>(), // ops seed
    )
}

/// Arrivals/departures per sequence. Sequences are short but every step
/// is checked, so each case exercises ~ops² admit/release interleavings.
const OPS: usize = 40;

/// Rebuilds the surviving tenants' residuals from scratch (in the same
/// canonical id order the session uses) and asserts exact equality.
fn assert_reconciled(session: &mut Session, step: &str) {
    let phys = session.phys().clone();
    let snapshot = session.snapshot();
    let rebuilt = ResidualState::rebuilt(
        &phys,
        snapshot.tenants.iter().map(|t| (&t.venv, &t.mapping)),
    )
    .expect("surviving tenants must rebuild cleanly");
    assert_eq!(
        session.residual(),
        &rebuilt,
        "{step}: session residuals differ from a from-scratch rebuild"
    );
    let status = session.status();
    assert_eq!(status.leak, 0.0, "{step}: non-zero leak reported");
    assert_eq!(
        status.tenants as usize,
        snapshot.tenants.len(),
        "{step}: tenant count out of sync"
    );
}

/// Drives a random arrival/departure sequence through a [`Session`],
/// checking the rebuild invariant after every single mutation, then tears
/// everything down and demands pristine residuals bit-for-bit.
fn reconciliation_check(hosts: usize, topo: usize, seed: u64) {
    let phys = build_phys(hosts, topo);
    let pristine = ResidualState::new(&phys);
    let mapper = Hmn::new();
    let mut session = Session::new(phys, seed);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut active: Vec<String> = Vec::new();
    let mut next_id = 0u64;
    let mut admitted = 0u64;

    for i in 0..OPS {
        let arrive = active.is_empty() || rng.gen_bool(0.6);
        if arrive {
            let id = format!("t{next_id}");
            next_id += 1;
            let spec = VirtualEnvSpec {
                guests: rng.gen_range(1..10),
                density: rng.gen_range(0.0..0.4),
                mem_mb: Range::new(64.0, 256.0),
                stor_gb: Range::new(10.0, 50.0),
                cpu_mips: Range::new(20.0, 100.0),
                bw_kbps: Range::new(50.0, 500.0),
                lat_ms: Range::new(20.0, 80.0),
                distribution: Distribution::Uniform,
            };
            let venv = spec.generate(&mut SmallRng::seed_from_u64(rng.gen::<u64>()));
            match session.apply(&id, venv, &mapper) {
                ApplyOutcome::Admitted(_) => {
                    admitted += 1;
                    active.push(id);
                }
                ApplyOutcome::Rejected { .. } => {}
            }
            assert_reconciled(&mut session, &format!("op {i} (apply)"));
        } else {
            let idx = rng.gen_range(0..active.len());
            let id = active.swap_remove(idx);
            session.remove(&id).expect("active tenants can be removed");
            assert_reconciled(&mut session, &format!("op {i} (remove)"));
        }
        // Counter bookkeeping must agree with the driver's view at every
        // step: admissions minus departures is exactly the active set.
        let c = session.counters();
        assert_eq!(c.admitted, admitted, "op {i}: admitted counter");
        assert_eq!(
            c.admitted - c.removed,
            active.len() as u64,
            "op {i}: active_tenants out of sync with the driver"
        );
        assert_eq!(c.active_tenants, active.len() as u64);
    }

    // Removing a tenant that does not exist must fail cleanly and leave
    // the residuals untouched.
    let before = session.residual().clone();
    assert!(matches!(
        session.remove("no-such-tenant"),
        Err(ServeError::UnknownTenant { .. })
    ));
    assert_eq!(session.residual(), &before);

    // A session restored from the snapshot lands on identical residuals.
    let snapshot = session.snapshot();
    let mut restored = Session::new(session.phys().clone(), seed);
    restored.restore(snapshot).expect("snapshot restores");
    assert_eq!(restored.residual(), session.residual());

    // Full teardown: pristine, bit-for-bit.
    for id in active.drain(..) {
        session.remove(&id).expect("teardown");
    }
    assert_eq!(
        session.residual(),
        &pristine,
        "full teardown must restore pristine residuals"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn residuals_always_equal_a_fresh_rebuild((hosts, topo, seed) in arb_instance()) {
        reconciliation_check(hosts, topo, seed);
    }
}

/// Replays every seed pinned in
/// `proptest-regressions/serve_reconciliation.txt` (same manual
/// persistence discipline as the other property suites: the vendored
/// proptest shim has no automatic regression file, so this test is the
/// regression memory).
#[test]
fn regression_seeds_replay() {
    let pinned = include_str!("../proptest-regressions/serve_reconciliation.txt");
    let mut replayed = 0u32;
    for line in pinned.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        assert_eq!(parts.next(), Some("cc"), "bad regression line: {line}");
        let name = parts
            .next()
            .unwrap_or_else(|| panic!("missing test name in: {line}"));
        let seed_tok = parts
            .next()
            .unwrap_or_else(|| panic!("missing seed in: {line}"));
        let seed = u64::from_str_radix(seed_tok.trim_start_matches("0x"), 16)
            .unwrap_or_else(|e| panic!("bad seed {seed_tok}: {e}"));
        let mut rng = SmallRng::seed_from_u64(seed);
        match name {
            "residuals_always_equal_a_fresh_rebuild" => {
                let (hosts, topo, s) = arb_instance().generate(&mut rng);
                reconciliation_check(hosts, topo, s);
            }
            other => panic!("regression file pins unknown test '{other}'"),
        }
        replayed += 1;
    }
    assert!(replayed > 0, "regression file pinned no cases");
}
