//! Property suite for the physical CSR hot paths: iterating a
//! [`CsrAdjacency`] snapshot must be *observably identical* to iterating
//! the edge-list adjacency it was built from, on arbitrary random
//! topologies. This is the contract that lets the Networking/DFS/Dijkstra
//! code swap iteration sources without perturbing any RNG stream or
//! mapping result.

use emumap::graph::algo::{dijkstra, dijkstra_csr};
use emumap::graph::{generators, Graph, NodeId};
use emumap::mapping::{
    astar_prune, astar_prune_with, hop_distances, naive_dfs_route, naive_dfs_route_csr,
    AStarPruneConfig, DfsScratch, RouteScratch,
};
use emumap::model::{
    HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips, PhysNode, PhysicalTopology, ResidualState,
    StorGb, VmmOverhead,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A random connected cluster with heterogeneous link bandwidths and
/// latencies (uniform links would make most equivalence checks vacuous —
/// every path ties). Pure function of the inputs.
fn build_cluster(hosts: usize, density: f64, seed: u64) -> PhysicalTopology {
    let mut rng = SmallRng::seed_from_u64(seed);
    let shape = generators::random_connected(hosts, density, &mut rng);
    let mut g: Graph<PhysNode, LinkSpec> = Graph::with_capacity(shape.node_count(), 0);
    let ids: Vec<NodeId> = (0..shape.node_count())
        .map(|_| {
            g.add_node(PhysNode::Host(HostSpec::new(
                Mips(2000.0),
                MemMb::from_gb(2),
                StorGb(500.0),
            )))
        })
        .collect();
    for e in shape.edges() {
        let bw = Kbps(rng.gen_range(100.0..2000.0));
        let lat = Millis(rng.gen_range(1.0..10.0));
        g.add_edge(ids[e.a.index()], ids[e.b.index()], LinkSpec::new(bw, lat));
    }
    PhysicalTopology::from_graph(g, VmmOverhead::NONE)
}

fn arb_cluster() -> impl Strategy<Value = (PhysicalTopology, u64)> {
    (3usize..40, 0.0f64..0.5, any::<u64>())
        .prop_map(|(hosts, density, seed)| (build_cluster(hosts, density, seed), seed))
}

/// Picks two distinct hosts, a pure function of (phys, seed).
fn pick_pair(phys: &PhysicalTopology, seed: u64) -> (NodeId, NodeId) {
    let hosts = phys.hosts();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x51f3);
    let a = hosts[rng.gen_range(0..hosts.len())];
    let b = loop {
        let b = hosts[rng.gen_range(0..hosts.len())];
        if b != a {
            break b;
        }
    };
    (a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dijkstra over the CSR snapshot returns the same distance table as
    /// Dijkstra over the edge list, for both the latency and the
    /// unit-cost (hop count) weightings.
    #[test]
    fn dijkstra_csr_matches_edge_list((phys, seed) in arb_cluster()) {
        let graph = phys.graph();
        let csr = graph.to_csr();
        let (_, dest) = pick_pair(&phys, seed);
        let by_lat = dijkstra(graph, dest, |_, l| l.lat.value());
        let by_lat_csr = dijkstra_csr(graph, &csr, dest, |_, l| l.lat.value());
        prop_assert_eq!(by_lat.distances(), by_lat_csr.distances());
        let by_hop = dijkstra(graph, dest, |_, _| 1.0);
        let by_hop_csr = dijkstra_csr(graph, &csr, dest, |_, _| 1.0);
        prop_assert_eq!(by_hop.distances(), by_hop_csr.distances());
    }

    /// The randomized DFS router consumes its RNG identically through
    /// both iteration sources: same path (bit for bit) and same RNG
    /// stream afterwards, so swapping in the CSR cannot shift any
    /// downstream random decision.
    #[test]
    fn dfs_route_csr_matches_edge_list((phys, seed) in arb_cluster()) {
        let csr = phys.graph().to_csr();
        let residual = ResidualState::new(&phys);
        let (origin, dest) = pick_pair(&phys, seed);
        let hops = hop_distances(&phys, dest);
        let demand = Kbps(50.0);
        let bound = Millis(90.0);
        let mut rng_a = SmallRng::seed_from_u64(seed);
        let via_edges = naive_dfs_route(
            &phys, &residual, origin, dest, demand, bound, &hops, &mut rng_a,
        );
        let mut rng_b = SmallRng::seed_from_u64(seed);
        let mut scratch = DfsScratch::default();
        let via_csr = naive_dfs_route_csr(
            &phys, &csr, &residual, origin, dest, demand, bound, &hops, &mut rng_b, &mut scratch,
        );
        prop_assert_eq!(via_edges, via_csr);
        prop_assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "RNG streams diverged");
    }

    /// A\*Prune through a cached CSR + warm scratch equals the
    /// allocate-per-call wrapper on arbitrary clusters (scratch history
    /// must never leak into a search).
    #[test]
    fn astar_prune_csr_scratch_matches_fresh((phys, seed) in arb_cluster()) {
        let csr = phys.graph().to_csr();
        let residual = ResidualState::new(&phys);
        let config = AStarPruneConfig::default();
        let mut scratch = RouteScratch::new();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xa5a5);
        for trial in 0..3u64 {
            let (origin, dest) = pick_pair(&phys, seed ^ trial);
            let ar = dijkstra(phys.graph(), dest, |_, l| l.lat.value())
                .distances()
                .to_vec();
            let demand = Kbps(rng.gen_range(1.0..300.0));
            let bound = Millis(rng.gen_range(5.0..60.0));
            let fresh = astar_prune(
                &phys, &residual, origin, dest, demand, bound, &ar, &config,
            );
            let warm = astar_prune_with(
                &phys, &residual, origin, dest, demand, bound, &ar, &config, &csr, &mut scratch,
            );
            prop_assert_eq!(fresh, warm);
        }
    }

    /// Dominance pruning is a heuristic (it may tie-break differently),
    /// but any path it returns must satisfy the same feasibility
    /// contract as the exhaustive search: demand fits every edge and the
    /// latency bound holds.
    #[test]
    fn dominance_pruned_paths_are_feasible((phys, seed) in arb_cluster()) {
        let residual = ResidualState::new(&phys);
        let (origin, dest) = pick_pair(&phys, seed);
        let ar = dijkstra(phys.graph(), dest, |_, l| l.lat.value())
            .distances()
            .to_vec();
        let config = AStarPruneConfig {
            prune_dominated: true,
            ..Default::default()
        };
        let demand = Kbps(150.0);
        let bound = Millis(45.0);
        if let Some((path, stats)) = astar_prune(
            &phys, &residual, origin, dest, demand, bound, &ar, &config,
        ) {
            let lat: f64 = path.iter().map(|&e| phys.link(e).lat.value()).sum();
            prop_assert!(lat <= bound.value() + 1e-9);
            for &e in &path {
                prop_assert!(residual.bw(e).value() >= demand.value());
            }
            prop_assert!(stats.expanded > 0);
        }
    }
}

/// Replays every seed pinned in
/// `proptest-regressions/routing_equivalence.txt`. The in-tree proptest
/// shim has no automatic persistence, so this file is the suite's
/// regression memory: a seed added here reruns on every `cargo test`.
#[test]
fn regression_seeds_replay() {
    let pinned = include_str!("../proptest-regressions/routing_equivalence.txt");
    let mut replayed = 0u32;
    for line in pinned.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        assert_eq!(parts.next(), Some("cc"), "bad regression line: {line}");
        let name = parts
            .next()
            .unwrap_or_else(|| panic!("missing test name in: {line}"));
        let seed_tok = parts
            .next()
            .unwrap_or_else(|| panic!("missing seed in: {line}"));
        let seed = u64::from_str_radix(seed_tok.trim_start_matches("0x"), 16)
            .unwrap_or_else(|e| panic!("bad seed {seed_tok}: {e}"));

        let mut rng = SmallRng::seed_from_u64(seed);
        let (phys, s) = arb_cluster().generate(&mut rng);
        match name {
            "dijkstra_csr_matches_edge_list" => {
                let graph = phys.graph();
                let csr = graph.to_csr();
                let (_, dest) = pick_pair(&phys, s);
                assert_eq!(
                    dijkstra(graph, dest, |_, l| l.lat.value()).distances(),
                    dijkstra_csr(graph, &csr, dest, |_, l| l.lat.value()).distances(),
                );
            }
            "dfs_route_csr_matches_edge_list" => {
                let csr = phys.graph().to_csr();
                let residual = ResidualState::new(&phys);
                let (origin, dest) = pick_pair(&phys, s);
                let hops = hop_distances(&phys, dest);
                let mut rng_a = SmallRng::seed_from_u64(s);
                let a = naive_dfs_route(
                    &phys,
                    &residual,
                    origin,
                    dest,
                    Kbps(50.0),
                    Millis(90.0),
                    &hops,
                    &mut rng_a,
                );
                let mut rng_b = SmallRng::seed_from_u64(s);
                let mut scratch = DfsScratch::default();
                let b = naive_dfs_route_csr(
                    &phys,
                    &csr,
                    &residual,
                    origin,
                    dest,
                    Kbps(50.0),
                    Millis(90.0),
                    &hops,
                    &mut rng_b,
                    &mut scratch,
                );
                assert_eq!(a, b);
                assert_eq!(rng_a.next_u64(), rng_b.next_u64());
            }
            other => panic!("regression file pins unknown test '{other}'"),
        }
        replayed += 1;
    }
    assert!(replayed > 0, "regression file pinned no cases");
}
