//! The "arbitrary cluster networks" claim (§2): the related emulators the
//! paper surveys are limited to single-switch topologies (V-eM "does not
//! allow the mapping of virtual links between guests whose hosts are not
//! connected in the same switch"), while HMN "can manage arbitrary cluster
//! networks". This example exercises that claim on a k=4 **fat tree** — a
//! multi-path data-center topology none of the surveyed systems could
//! handle — and shows A*Prune spreading virtual links across the
//! redundant core paths.
//!
//! ```sh
//! cargo run --release --example fat_tree_datacenter
//! ```

use emumap::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

fn main() {
    let mut rng = SmallRng::seed_from_u64(23);

    // k=4 fat tree: 16 hosts, 20 switches, 48 links. Every host pair in
    // different pods has 4 disjoint core routes.
    let shape = generators::fat_tree(4);
    let phys = PhysicalTopology::from_shape(
        &shape,
        std::iter::repeat(HostSpec::new(
            Mips(2000.0),
            MemMb::from_gb(2),
            StorGb(2000.0),
        )),
        // 100 Mbps links: each host has a single uplink, so its resident
        // guests' aggregate external traffic must fit through it.
        LinkSpec::new(Kbps::from_mbps(100.0), Millis(2.0)),
        VmmOverhead::NONE,
    );
    let switches = phys.graph().node_count() - phys.host_count();
    println!(
        "fat tree k=4: {} hosts, {switches} switches, {} links, latency diameter {:.0} ms",
        phys.host_count(),
        phys.graph().edge_count(),
        emumap::graph::algo::diameter(phys.graph(), |_, l| l.lat.value()).unwrap()
    );

    // A bandwidth-hungry shuffle workload: 48 guests, all-to-some traffic.
    let mut venv = VirtualEnvironment::new();
    let guests: Vec<_> = (0..48)
        .map(|_| {
            venv.add_guest(GuestSpec::new(
                Mips(rng.gen_range(50.0..=100.0)),
                MemMb(rng.gen_range(128..=256)),
                StorGb(rng.gen_range(100.0..=200.0)),
            ))
        })
        .collect();
    for i in 0..guests.len() {
        for _ in 0..2 {
            let j = rng.gen_range(0..guests.len());
            if i != j {
                venv.add_link(
                    guests[i],
                    guests[j],
                    VLinkSpec::new(Kbps(rng.gen_range(500.0..=1500.0)), Millis(30.0)),
                );
            }
        }
    }
    println!(
        "workload: {} guests, {} links, {:.1} Mbps total demand\n",
        venv.guest_count(),
        venv.link_count(),
        venv.link_ids()
            .map(|l| venv.link(l).bw.value())
            .sum::<f64>()
            / 1000.0
    );

    let outcome = Hmn::new()
        .map(&phys, &venv, &mut rng)
        .expect("fat tree has ample multipath capacity");
    validate_mapping(&phys, &venv, &outcome.mapping).expect("valid");

    println!(
        "HMN: objective {:.1}, {} routed / {} intra-host links, {:?} total",
        outcome.objective,
        outcome.stats.routed_links,
        outcome.stats.intra_host_links,
        outcome.stats.total_time
    );

    // How evenly did the widest-path routing spread traffic over the
    // physical links?
    let mut usage: HashMap<EdgeId, f64> = HashMap::new();
    for l in venv.link_ids() {
        for &e in outcome.mapping.route_of(l).edges() {
            *usage.entry(e).or_default() += venv.link(l).bw.value();
        }
    }
    let used_links = usage.len();
    let max_load = usage.values().cloned().fold(0.0, f64::max);
    let mean_load: f64 = usage.values().sum::<f64>() / used_links.max(1) as f64;
    println!(
        "traffic spread: {used_links}/{} physical links carry load; mean {:.0} kbps, peak {:.0} kbps \
         ({:.0}% of capacity)",
        phys.graph().edge_count(),
        mean_load,
        max_load,
        100.0 * max_load / 100_000.0
    );

    // Hop histogram: multipath topologies produce 2/4/6-hop routes.
    let mut hops: HashMap<usize, usize> = HashMap::new();
    for l in venv.link_ids() {
        *hops
            .entry(outcome.mapping.route_of(l).hop_count())
            .or_default() += 1;
    }
    let mut keys: Vec<_> = hops.keys().copied().collect();
    keys.sort_unstable();
    print!("route hops:");
    for k in keys {
        print!("  {k} hops x{}", hops[&k]);
    }
    println!();
    println!("\n(single-switch emulators like V-eM cannot express this topology at all)");
}
