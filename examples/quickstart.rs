//! Quickstart: map a small virtual environment onto the paper's 40-host
//! cluster with HMN, validate it, and run the emulated experiment.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use emumap::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(2009);

    // 1. The physical testbed: the paper's heterogeneous 40-host cluster,
    //    arranged as a 5x8 2-D torus with 1 Gbps / 5 ms links.
    let cluster = ClusterSpec::paper();
    let phys = cluster.build(ClusterSpec::paper_torus(), &mut rng);
    println!(
        "cluster: {} hosts, {} links, {:.0} MIPS total CPU",
        phys.host_count(),
        phys.graph().edge_count(),
        phys.total_effective_proc().value()
    );

    // 2. The virtual environment to emulate: 100 full-stack guests
    //    (memory 128-256 MB, storage 100-200 GB, 50-100 MIPS) in a random
    //    connected graph of density 0.02.
    let venv = VirtualEnvSpec::high_level(100, 0.02).generate(&mut rng);
    println!(
        "virtual environment: {} guests, {} virtual links",
        venv.guest_count(),
        venv.link_count()
    );

    // 3. Map with the HMN heuristic.
    let outcome = Hmn::new()
        .map(&phys, &venv, &mut rng)
        .expect("the 2.5:1 scenario is comfortably mappable");
    println!(
        "HMN: objective = {:.1} MIPS stddev | {} migrations | {} links routed, {} intra-host",
        outcome.objective,
        outcome.stats.migrations,
        outcome.stats.routed_links,
        outcome.stats.intra_host_links,
    );
    println!(
        "stage times: hosting {:?}, migration {:?}, networking {:?}",
        outcome.stats.placement_time, outcome.stats.migration_time, outcome.stats.networking_time,
    );

    // 4. Independently verify every constraint of the paper's formal model
    //    (Eqs. 1-9).
    validate_mapping(&phys, &venv, &outcome.mapping).expect("mapping violates the formal model");
    println!("mapping validates against Eqs. 1-9");

    // 5. Run the emulated experiment on the mapped testbed.
    let result = run_experiment(&phys, &venv, &outcome.mapping, &ExperimentSpec::default());
    println!(
        "emulated experiment: {:.2}s total ({:.2}s compute, {:.2}s network)",
        result.total_s, result.compute_s, result.network_s
    );
}
