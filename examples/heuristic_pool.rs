//! The §6 future-work vision: "offer to the emulator a pool of different
//! heuristics that might be selected according to the emulated scenario."
//!
//! §5.2 admits "HMN may fail in finding a mapping in scenarios in which
//! the requirements of the virtual system is too close to the resource
//! availability". This example constructs such a scenario — one that
//! exploits a real quirk of the Hosting stage: co-location of a
//! high-bandwidth pair is only attempted on *the first host of the
//! CPU-sorted list* (§4.1); if the pair does not fit **there**, the guests
//! are split even when they would fit together on another host. When the
//! split link demands more bandwidth than any physical link carries, the
//! Networking stage must fail. Random placement, which co-locates the
//! pair by chance under retries, recovers — so a pool with an RA fallback
//! keeps the emulator usable.
//!
//! ```sh
//! cargo run --release --example heuristic_pool
//! ```

use emumap::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The adversarial instance:
///
/// * host 0 has the most CPU (so Hosting tries it first) but tiny memory —
///   it can take ONE of the heavy guests, not both;
/// * every other host could take the pair comfortably;
/// * the pair's virtual link demands 5 Mbps, 2.5x any physical link — it
///   is only mappable intra-host.
fn adversarial_instance() -> (PhysicalTopology, VirtualEnvironment) {
    let shape = generators::ring(12);
    let mut specs = vec![HostSpec::new(Mips(3000.0), MemMb(300), StorGb(500.0))];
    for i in 0..11 {
        specs.push(HostSpec::new(
            Mips(1000.0 + 100.0 * i as f64),
            MemMb(2048),
            StorGb(500.0),
        ));
    }
    let phys = PhysicalTopology::from_shape(
        &shape,
        specs.into_iter(),
        LinkSpec::new(Kbps(2_000.0), Millis(5.0)),
        VmmOverhead::NONE,
    );

    let mut venv = VirtualEnvironment::new();
    // The heavy pair: must share a host.
    let a = venv.add_guest(GuestSpec::new(Mips(120.0), MemMb(200), StorGb(20.0)));
    let b = venv.add_guest(GuestSpec::new(Mips(110.0), MemMb(200), StorGb(20.0)));
    venv.add_link(a, b, VLinkSpec::new(Kbps(5_000.0), Millis(60.0)));
    // Background population with modest links (all easily routable).
    let mut prev = b;
    for i in 0..14 {
        let g = venv.add_guest(GuestSpec::new(
            Mips(50.0 + 5.0 * i as f64),
            MemMb(150),
            StorGb(10.0),
        ));
        venv.add_link(prev, g, VLinkSpec::new(Kbps(200.0), Millis(60.0)));
        prev = g;
    }
    (phys, venv)
}

fn report(label: &str, result: Result<MapOutcome, MapError>) {
    match result {
        Ok(out) => println!(
            "{label:<22} ok   objective {:>7.1}  hosts {:>2}  attempts {:>3}",
            out.objective,
            out.mapping.hosts_used(),
            out.stats.attempts
        ),
        Err(e) => println!("{label:<22} FAIL ({e})"),
    }
}

fn main() {
    let (phys, venv) = adversarial_instance();
    println!(
        "adversarial instance: a 5 Mbps virtual pair (physical links: 2 Mbps) that only \
         fits together on a host the Hosting stage refuses to pair them on\n"
    );

    // HMN fails deterministically: hosting splits the pair, networking
    // cannot route 5 Mbps over 2 Mbps links.
    report(
        "HMN",
        Hmn::new().map(&phys, &venv, &mut SmallRng::seed_from_u64(0)),
    );

    // RA succeeds: random placement co-locates the pair within a few
    // hundred retries (probability ~1/12 per attempt).
    report(
        "RA",
        RandomAStar::default().map(&phys, &venv, &mut SmallRng::seed_from_u64(0)),
    );

    // First-success pool: prefer HMN, fall back to RA, then R.
    let fallback = HeuristicPool::new(
        vec![
            Box::new(Hmn::new()),
            Box::new(RandomAStar::default()),
            Box::new(RandomDfs::default()),
        ],
        PoolPolicy::FirstSuccess,
    );
    report(
        "pool[HMN->RA->R]",
        fallback.map(&phys, &venv, &mut SmallRng::seed_from_u64(0)),
    );

    // The §6 research direction made concrete: a Hosting variant that
    // scans for the first host fitting BOTH guests (instead of only trying
    // the head of the CPU-sorted list) repairs this instance outright —
    // with Migration pinned off so it cannot re-split the pair.
    report(
        "HMN[colocation-fix]",
        Hmn::with_config(HmnConfig {
            hosting: HostingPolicy::FirstFitColocation,
            migration: MigrationPolicy::Off,
            ..Default::default()
        })
        .map(&phys, &venv, &mut SmallRng::seed_from_u64(0)),
    );

    // Simulated annealing searches placement space directly and also
    // recovers (its inter-host-bandwidth energy term pulls the pair
    // together).
    report(
        "SA",
        Annealing {
            config: AnnealingConfig {
                bandwidth_weight: 4.0,
                ..Default::default()
            },
        }
        .map(&phys, &venv, &mut SmallRng::seed_from_u64(0)),
    );

    // Best-objective pool: run everything, keep the best balance.
    let racing = HeuristicPool::new(
        vec![
            Box::new(Hmn::new()),
            Box::new(RandomAStar::default()),
            Box::new(HostingDfs::default()),
        ],
        PoolPolicy::BestObjective,
    );
    report(
        "pool[best-objective]",
        racing.map(&phys, &venv, &mut SmallRng::seed_from_u64(0)),
    );

    println!("\n(the pool keeps the emulator usable exactly where a single heuristic fails)");
}
