//! The §6 alternative objective: "one could be interested in a mapping
//! whose goal is to minimize the amount of hosts used in each emulation."
//!
//! Compares plain HMN (balance CPU across all hosts) with the
//! consolidating variant (pack guests onto as few hosts as possible) on
//! the same instance, and quantifies the trade-off: fewer hosts <-> worse
//! balance <-> longer experiment.
//!
//! ```sh
//! cargo run --release --example consolidation
//! ```

use emumap::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(17);
    let cluster = ClusterSpec::paper();
    let phys = cluster.build(ClusterSpec::paper_torus(), &mut rng);

    // A light workload (1.5:1): plenty of room to either spread or pack.
    let venv = VirtualEnvSpec::high_level(60, 0.03).generate(&mut rng);
    println!(
        "instance: {} guests / {} links on {} hosts\n",
        venv.guest_count(),
        venv.link_count(),
        phys.host_count()
    );

    let balanced = Hmn::new()
        .map(&phys, &venv, &mut rng)
        .expect("light workload maps");
    let packed = ConsolidatingHmn::default()
        .map(&phys, &venv, &mut rng)
        .expect("light workload maps");

    for (label, out) in [("HMN (balance)", &balanced), ("HMN-consolidate", &packed)] {
        validate_mapping(&phys, &venv, &out.mapping).expect("invalid mapping");
        let sim = run_experiment(&phys, &venv, &out.mapping, &ExperimentSpec::default());
        println!("{label}:");
        println!("  hosts used         : {}", out.mapping.hosts_used());
        println!("  objective (Eq. 10) : {:.1} MIPS stddev", out.objective);
        println!(
            "  links intra-host   : {} of {}",
            out.mapping.intra_host_link_count(),
            venv.link_count()
        );
        println!("  experiment runtime : {:.2}s\n", sim.total_s);
    }

    assert!(
        packed.mapping.hosts_used() <= balanced.mapping.hosts_used(),
        "consolidation must not use more hosts"
    );
    println!(
        "consolidation keeps {} of {} hosts completely free for other testers \
         (plain HMN leaves {}), at the cost of {:.1}x the balance objective",
        phys.host_count() - packed.mapping.hosts_used(),
        phys.host_count(),
        phys.host_count() - balanced.mapping.hosts_used(),
        if balanced.objective > 0.0 {
            packed.objective / balanced.objective
        } else {
            f64::INFINITY
        }
    );
}
