//! P2P-protocol testbed (the paper's *low-level* use case, §5, after
//! Quétier et al.'s V-DS experiments): emulate a 1200-node peer-to-peer
//! overlay — minimal VMs, a ring-plus-fingers Chord-like topology — at a
//! 30:1 consolidation ratio, and watch where HMN spends its time.
//!
//! ```sh
//! cargo run --release --example p2p_overlay
//! ```

use emumap::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A Chord-like overlay: `n` peers in a ring, each with `fingers` shortcut
/// links at exponentially growing distances.
fn chord_overlay(n: usize, fingers: usize, rng: &mut SmallRng) -> VirtualEnvironment {
    let mut venv = VirtualEnvironment::new();
    let peers: Vec<_> = (0..n)
        .map(|_| {
            venv.add_guest(GuestSpec::new(
                Mips(rng.gen_range(19.0..=38.0)),
                MemMb(rng.gen_range(19..=38)),
                StorGb(rng.gen_range(19.0..=38.0)),
            ))
        })
        .collect();
    let link = |rng: &mut SmallRng| {
        VLinkSpec::new(
            Kbps(rng.gen_range(87.0..=175.0)),
            Millis(rng.gen_range(30.0..=60.0)),
        )
    };
    // Ring successors.
    for i in 0..n {
        venv.add_link(peers[i], peers[(i + 1) % n], link(rng));
    }
    // Finger tables: shortcuts at distance 2, 4, 8, ...
    for i in 0..n {
        let mut d = 2usize;
        for _ in 0..fingers {
            if d >= n {
                break;
            }
            venv.add_link(peers[i], peers[(i + d) % n], link(rng));
            d *= 2;
        }
    }
    venv
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(11);
    let cluster = ClusterSpec::paper();
    // P2P emulations often run on commodity switched clusters.
    let phys = cluster.build(ClusterSpec::paper_switched(), &mut rng);

    let peers = 1200; // 30:1 on 40 hosts
    let venv = chord_overlay(peers, 4, &mut rng);
    println!(
        "P2P overlay: {} peers, {} overlay links ({}:1 guests per host)\n",
        venv.guest_count(),
        venv.link_count(),
        peers / phys.host_count()
    );

    let outcome = Hmn::new()
        .map(&phys, &venv, &mut rng)
        .expect("low-level workload fits the cluster");
    validate_mapping(&phys, &venv, &outcome.mapping).expect("invalid mapping");

    println!("HMN mapped the overlay:");
    println!(
        "  objective (Eq. 10)    : {:.1} MIPS stddev",
        outcome.objective
    );
    println!("  migrations performed  : {}", outcome.stats.migrations);
    println!(
        "  links routed / intra  : {} / {}",
        outcome.stats.routed_links, outcome.stats.intra_host_links
    );
    println!(
        "  stage times           : hosting {:?} | migration {:?} | networking {:?}",
        outcome.stats.placement_time, outcome.stats.migration_time, outcome.stats.networking_time
    );
    println!("  total mapping time    : {:?}", outcome.stats.total_time);

    // Per-host occupancy histogram: how hard was each host packed?
    let groups = outcome.mapping.guests_by_host();
    let mut counts: Vec<usize> = groups.values().map(|g| g.len()).collect();
    counts.sort_unstable();
    println!(
        "\nguests per used host: min {}, median {}, max {} ({} hosts used)",
        counts.first().unwrap(),
        counts[counts.len() / 2],
        counts.last().unwrap(),
        counts.len()
    );

    // On the switched topology every inter-host route is host-switch-host:
    // §5.2 notes mapping time is sub-second there because "there is only
    // one possible path to each virtual link".
    let max_hops = venv
        .link_ids()
        .map(|l| outcome.mapping.route_of(l).hop_count())
        .max()
        .unwrap();
    println!("longest route: {max_hops} physical hops (switched cluster: always 2)");

    // A quick protocol round on the emulated overlay.
    let sim = run_experiment(
        &phys,
        &venv,
        &outcome.mapping,
        &ExperimentSpec {
            rounds: 5,
            work_factor: 0.5,
            msg_kbits: 20.0,
            ..Default::default()
        },
    );
    println!(
        "\n5 gossip rounds on the emulated overlay: {:.2}s ({:.2}s compute, {:.2}s network)",
        sim.total_s, sim.compute_s, sim.network_s
    );
}
