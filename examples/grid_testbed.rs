//! Grid-middleware testbed (the paper's *high-level* use case, §5):
//! emulate a multi-site grid — clusters of compute guests around head
//! nodes, sites joined by long-haul links — on one physical cluster, and
//! compare all four heuristics on the same instance.
//!
//! ```sh
//! cargo run --release --example grid_testbed
//! ```

use emumap::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Builds a multi-site grid: `sites` star-shaped clusters whose head nodes
/// form a clique of inter-site links. Head nodes are beefier; inter-site
/// links are slower and latency-tolerant, intra-site links fast and tight —
/// the communication structure a grid middleware test would emulate.
fn grid_environment(
    sites: usize,
    guests_per_site: usize,
    rng: &mut SmallRng,
) -> VirtualEnvironment {
    let mut venv = VirtualEnvironment::new();
    let mut heads = Vec::with_capacity(sites);

    for _ in 0..sites {
        // Head node: database + scheduler, more memory and CPU.
        let head = venv.add_guest(GuestSpec::new(
            Mips(rng.gen_range(80.0..=100.0)),
            MemMb(rng.gen_range(192..=256)),
            StorGb(rng.gen_range(150.0..=200.0)),
        ));
        heads.push(head);
        for _ in 0..guests_per_site {
            let worker = venv.add_guest(GuestSpec::new(
                Mips(rng.gen_range(50.0..=80.0)),
                MemMb(rng.gen_range(128..=192)),
                StorGb(rng.gen_range(100.0..=150.0)),
            ));
            // Intra-site: fast LAN emulation, strict latency.
            venv.add_link(
                head,
                worker,
                VLinkSpec::new(Kbps(rng.gen_range(800.0..=1000.0)), Millis(30.0)),
            );
        }
    }
    // Inter-site WAN links: slower, latency-tolerant.
    for i in 0..sites {
        for j in (i + 1)..sites {
            venv.add_link(
                heads[i],
                heads[j],
                VLinkSpec::new(Kbps(rng.gen_range(500.0..=700.0)), Millis(60.0)),
            );
        }
    }
    venv
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(7);
    let cluster = ClusterSpec::paper();
    let phys = cluster.build(ClusterSpec::paper_torus(), &mut rng);
    let venv = grid_environment(8, 15, &mut rng); // 8 sites x (1 head + 15 workers) = 128 guests

    println!(
        "grid testbed: {} guests, {} virtual links on {} hosts\n",
        venv.guest_count(),
        venv.link_count(),
        phys.host_count()
    );
    println!(
        "{:<6} {:>12} {:>10} {:>9} {:>11} {:>12}",
        "mapper", "objective", "hosts", "routed", "experiment", "map time"
    );

    let mappers: Vec<Box<dyn Mapper>> = vec![
        Box::new(Hmn::new()),
        Box::new(RandomDfs::default()),
        Box::new(RandomAStar::default()),
        Box::new(HostingDfs::default()),
    ];
    for mapper in &mappers {
        let mut mrng = SmallRng::seed_from_u64(42);
        match mapper.map(&phys, &venv, &mut mrng) {
            Ok(outcome) => {
                validate_mapping(&phys, &venv, &outcome.mapping).expect("invalid mapping");
                let sim =
                    run_experiment(&phys, &venv, &outcome.mapping, &ExperimentSpec::default());
                println!(
                    "{:<6} {:>12.1} {:>10} {:>9} {:>10.2}s {:>11.2?}",
                    mapper.name(),
                    outcome.objective,
                    outcome.mapping.hosts_used(),
                    outcome.stats.routed_links,
                    sim.total_s,
                    outcome.stats.total_time,
                );
            }
            Err(e) => println!("{:<6} failed: {e}", mapper.name()),
        }
    }

    println!(
        "\n(lower objective = better CPU balance; HMN should lead. R/HS failing on the \
         torus is the paper's Table 2 pattern — their DFS routing busts latency bounds \
         that A*Prune satisfies)"
    );
}
