//! In-tree shim of the `crossbeam` API surface used by this workspace:
//! scoped threads (backed by `std::thread::scope`) and a lock-based
//! `queue::SegQueue`. See `vendor/README.md`.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Scoped-thread handle passed to [`scope`] closures and to spawned
/// workers (crossbeam passes the scope again as the worker argument).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a worker inside the scope. The closure receives the scope
    /// itself, mirroring crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a thread scope; all spawned workers are joined before
/// returning. Returns `Err` with the panic payload if `f` or any worker
/// panicked, matching crossbeam's `thread::scope` contract.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

/// Crossbeam-compatible `thread` module alias (`crossbeam::thread::scope`).
pub mod thread {
    pub use super::{scope, Scope};
}

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Unbounded MPMC queue. The real crate is lock-free; this shim uses
    /// a mutex, which is plenty for the bench runner's work distribution.
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues an element.
        pub fn push(&self, value: T) {
            self.inner
                .lock()
                .expect("SegQueue poisoned")
                .push_back(value);
        }

        /// Dequeues the oldest element, `None` when empty.
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().expect("SegQueue poisoned").pop_front()
        }

        /// Number of queued elements.
        pub fn len(&self) -> usize {
            self.inner.lock().expect("SegQueue poisoned").len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            Self::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::queue::SegQueue;

    #[test]
    fn scoped_workers_drain_a_shared_queue() {
        let q = SegQueue::new();
        for i in 0..100u64 {
            q.push(i);
        }
        let sum = std::sync::atomic::AtomicU64::new(0);
        super::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    while let Some(v) = q.pop() {
                        sum.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        })
        .expect("no panics");
        assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), 4950);
        assert!(q.is_empty());
    }

    #[test]
    fn scope_reports_worker_panic() {
        let r = super::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
