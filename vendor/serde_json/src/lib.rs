//! In-tree shim of the `serde_json` API surface used by this workspace:
//! `to_string`, `to_string_pretty`, `from_str` over the shim serde's
//! JSON-shaped `Value` data model. See `vendor/README.md`.
//!
//! One deliberate divergence from the real crate: non-finite floats are
//! written as the strings `"Infinity"` / `"-Infinity"` / `"NaN"` instead
//! of `null`, so the intra-host infinite-bandwidth sentinel survives a
//! round trip (`serde`'s `f64::from_value` accepts those strings back).

use serde::{DeError, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_nan() {
        out.push_str("\"NaN\"");
    } else if x == f64::INFINITY {
        out.push_str("\"Infinity\"");
    } else if x == f64::NEG_INFINITY {
        out.push_str("\"-Infinity\"");
    } else {
        // Rust's shortest-roundtrip Display; integral floats keep a ".0"
        // so they re-parse as floats.
        let s = format!("{x}");
        out.push_str(&s);
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    }
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    const STEP: &str = "  ";
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..=indent {
                    out.push_str(STEP);
                }
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            for _ in 0..indent {
                out.push_str(STEP);
            }
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..=indent {
                    out.push_str(STEP);
                }
                write_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + 1);
            }
            out.push('\n');
            for _ in 0..indent {
                out.push_str(STEP);
            }
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes `value` to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {what}")))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.eat(b'[', "`[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.eat(b'{', "`{`")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':', "`:`")?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"', "`\"`")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat(b'\\', "`\\` of surrogate pair")?;
                                self.eat(b'u', "`u` of surrogate pair")?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar from the source.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Parses `text` into a [`Value`].
pub fn value_from_str(text: &str) -> Result<Value> {
    let mut p = Parser::new(text);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: serde::de::DeserializeOwned>(text: &str) -> Result<T> {
    let value = value_from_str(text)?;
    T::from_value(&value).map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(to_string(&"a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
    }

    #[test]
    fn nonfinite_floats_roundtrip() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "\"Infinity\"");
        assert_eq!(from_str::<f64>("\"Infinity\"").unwrap(), f64::INFINITY);
        assert_eq!(from_str::<f64>("\"-Infinity\"").unwrap(), f64::NEG_INFINITY);
        assert!(from_str::<f64>("\"NaN\"").unwrap().is_nan());
    }

    #[test]
    fn vectors_and_tuples_roundtrip() {
        let v = vec![(1u32, 2u32), (3, 4)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3,4]]");
        let back: Vec<(u32, u32)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_printing_indents() {
        let v = vec![vec![1u32], vec![2, 3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("[\n"));
        let back: Vec<Vec<u32>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>("\"\\u00e9\"").unwrap(), "é");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
        assert_eq!(from_str::<String>("\"héllo\"").unwrap(), "héllo");
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<u64>("42 x").is_err());
        assert!(from_str::<bool>("7").is_err());
    }

    #[test]
    fn float_precision_roundtrips() {
        for &x in &[0.1f64, 1e-9, 123456.789, 1.0 / 3.0, f64::MAX] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, x, "json was {json}");
        }
    }
}
