//! Derive macros for the in-tree serde shim (`vendor/serde`).
//!
//! The workspace uses no `#[serde(...)]` attributes, so the derives can
//! be small: parse the item's shape straight from the token stream (no
//! syn/quote in the offline build environment) and emit `to_value` /
//! `from_value` impls in serde's default wire format — named struct →
//! object, newtype → inner value, tuple struct → array, externally
//! tagged enum variants.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Input {
    name: String,
    generics: Vec<String>,
    kind: Kind,
}

#[derive(Debug)]
enum Kind {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(id) if id.to_string() == s)
}

/// Advances past any `#[...]` attributes (including doc comments) and a
/// `pub` / `pub(...)` visibility prefix.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        if *i + 1 < tokens.len()
            && is_punct(&tokens[*i], '#')
            && matches!(&tokens[*i + 1], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
        {
            *i += 2;
            continue;
        }
        if *i < tokens.len() && is_ident(&tokens[*i], "pub") {
            *i += 1;
            if *i < tokens.len()
                && matches!(&tokens[*i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
            {
                *i += 1;
            }
            continue;
        }
        break;
    }
}

/// Parses `<...>` at `tokens[*i]` (if present), returning the type
/// parameter names. Lifetimes and const parameters are skipped.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    if *i >= tokens.len() || !is_punct(&tokens[*i], '<') {
        return params;
    }
    let mut depth = 0i32;
    let mut expecting = false;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                if depth == 1 {
                    expecting = true;
                }
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    *i += 1;
                    break;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expecting = true,
            TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 => expecting = false,
            TokenTree::Ident(id) if depth == 1 && expecting => {
                let s = id.to_string();
                expecting = false;
                if s != "const" {
                    params.push(s);
                }
            }
            _ => {}
        }
        *i += 1;
    }
    params
}

/// Splits a delimited group's tokens on commas at angle-bracket depth 0
/// (nested `()`/`[]`/`{}` are single `Group` tokens and hide their own
/// commas; only `<...>` needs explicit depth tracking).
fn split_top_level(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Extracts the field names of a named-field group body.
fn parse_named_fields(group: Vec<TokenTree>) -> Vec<String> {
    split_top_level(group)
        .into_iter()
        .filter_map(|field| {
            let mut i = 0;
            skip_attrs_and_vis(&field, &mut i);
            match field.get(i) {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

/// Parses enum variants from the enum body group.
fn parse_variants(group: Vec<TokenTree>) -> Vec<Variant> {
    split_top_level(group)
        .into_iter()
        .filter_map(|var| {
            let mut i = 0;
            skip_attrs_and_vis(&var, &mut i);
            let name = match var.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                _ => return None,
            };
            i += 1;
            let shape = match var.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(split_top_level(g.stream().into_iter().collect()).len())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream().into_iter().collect()))
                }
                _ => Shape::Unit,
            };
            Some(Variant { name, shape })
        })
        .collect()
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let is_enum = if is_ident(&tokens[i], "struct") {
        false
    } else if is_ident(&tokens[i], "enum") {
        true
    } else {
        panic!(
            "derive: expected `struct` or `enum`, found {:?}",
            tokens[i].to_string()
        );
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive: expected type name, found {:?}", other.to_string()),
    };
    i += 1;
    let generics = parse_generics(&tokens, &mut i);

    // Locate the body. Tuple structs have `( .. )` (possibly before a
    // where clause); named structs and enums have a brace group, which a
    // where clause may precede.
    if !is_enum {
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            if g.delimiter() == Delimiter::Parenthesis {
                let fields = split_top_level(g.stream().into_iter().collect()).len();
                return Input {
                    name,
                    generics,
                    kind: Kind::TupleStruct(fields),
                };
            }
        }
        if tokens.get(i).map(|t| is_punct(t, ';')).unwrap_or(false) {
            return Input {
                name,
                generics,
                kind: Kind::UnitStruct,
            };
        }
    }
    // Skip a where clause, if any, to the brace-delimited body.
    while i < tokens.len() {
        if let TokenTree::Group(g) = &tokens[i] {
            if g.delimiter() == Delimiter::Brace {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let kind = if is_enum {
                    Kind::Enum(parse_variants(body))
                } else {
                    Kind::NamedStruct(parse_named_fields(body))
                };
                return Input {
                    name,
                    generics,
                    kind,
                };
            }
        }
        i += 1;
    }
    panic!("derive: could not find body of `{name}`");
}

/// `impl<T: Bound, ..> Trait for Name<T, ..>` header.
fn impl_header(trait_path: &str, input: &Input) -> String {
    if input.generics.is_empty() {
        format!("impl {trait_path} for {}", input.name)
    } else {
        let bounded: Vec<String> = input
            .generics
            .iter()
            .map(|g| format!("{g}: {trait_path}"))
            .collect();
        format!(
            "impl<{}> {trait_path} for {}<{}>",
            bounded.join(", "),
            input.name,
            input.generics.join(", ")
        )
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.kind {
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::to_value(__f0))]),"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Array(::std::vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => \
                                 ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Object(::std::vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    let code = format!(
        "{} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
        impl_header("::serde::Serialize", &input)
    );
    code.parse()
        .expect("derive(Serialize): generated code failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.kind {
        Kind::UnitStruct => format!(
            "match __value {{ \
             ::serde::Value::Null => ::std::result::Result::Ok({name}), \
             __other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\
             \"{name}: expected null, found {{}}\", __other.kind()))) }}"
        ),
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __value.expect_tuple({n}, \"{name}\")?; \
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__field(__pairs, \"{f}\", \"{name}\")?"))
                .collect();
            format!(
                "let __pairs = __value.expect_object(\"{name}\")?; \
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => None,
                        Shape::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        Shape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let __items = \
                                 __inner.expect_tuple({n}, \"{name}::{vn}\")?; \
                                 ::std::result::Result::Ok({name}::{vn}({})) }},",
                                items.join(", ")
                            ))
                        }
                        Shape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::__field(__vp, \"{f}\", \"{name}::{vn}\")?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let __vp = \
                                 __inner.expect_object(\"{name}::{vn}\")?; \
                                 ::std::result::Result::Ok({name}::{vn} {{ {} }}) }},",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __value {{ \
                 ::serde::Value::Str(__s) => match __s.as_str() {{ \
                 {} \
                 __other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\
                 \"unknown unit variant `{{}}` of {name}\", __other))) }}, \
                 ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{ \
                 let (__tag, __inner) = &__pairs[0]; \
                 match __tag.as_str() {{ \
                 {} \
                 __other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\
                 \"unknown variant `{{}}` of {name}\", __other))) }} }}, \
                 __other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\
                 \"{name}: expected variant string or single-key object, found {{}}\", \
                 __other.kind()))) }}",
                unit_arms.join(" "),
                data_arms.join(" ")
            )
        }
    };
    let code = format!(
        "{} {{ fn from_value(__value: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}",
        impl_header("::serde::Deserialize", &input)
    );
    code.parse()
        .expect("derive(Deserialize): generated code failed to parse")
}
