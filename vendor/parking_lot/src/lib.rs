//! In-tree shim of the `parking_lot` API surface used by this workspace:
//! `Mutex` and `RwLock` with non-poisoning, non-`Result` lock methods,
//! backed by `std::sync`. See `vendor/README.md`.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutex whose `lock()` returns the guard directly (parking_lot style).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poison (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// RwLock whose `read()`/`write()` return guards directly.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates an RwLock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_guard_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_guard_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
