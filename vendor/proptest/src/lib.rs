//! In-tree shim of the `proptest` API surface used by this workspace:
//! the `proptest!` macro, `prop_assert*`/`prop_assume`, range/tuple/
//! `prop_map`/`any` strategies, and `prop::collection::vec`.
//!
//! Unlike the real crate there is no shrinking: a failing case panics
//! with its test name, iteration, and seed, which (generation being a
//! pure function of that seed) is enough to reproduce it. Case counts
//! honor `ProptestConfig::with_cases` and the `PROPTEST_CASES` env var.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::marker::PhantomData;
use std::ops::Range;

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

pub mod test_runner {
    //! Runner types mirroring `proptest::test_runner`.

    /// Why a test case did not pass: a real failure, or an input
    /// rejected by `prop_assume!`.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure — the property is violated.
        Fail(String),
        /// Input rejected by an assumption; the case is retried.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            strategy: self,
            func: f,
        }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    func: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.func)(self.strategy.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a full-domain default strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning many magnitudes.
        let unit: f64 = rng.gen();
        let exp = rng.gen_range(-60i32..60) as f64;
        (unit - 0.5) * exp.exp2()
    }
}

/// Strategy for [`Arbitrary`] types.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The default full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

pub mod collection {
    //! Collection strategies mirroring `proptest::collection`.

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                0
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Module alias so `prop::collection::vec` resolves as in the real crate.
pub mod prop {
    pub use crate::collection;
}

/// FNV-1a over the test name, giving each test its own seed stream.
fn name_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives one `proptest!` test: runs cases until `config.cases` succeed
/// (or `PROPTEST_CASES` overrides the count), panicking on the first
/// failure with enough detail to reproduce it.
pub fn run_proptest(
    name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> Result<(), test_runner::TestCaseError>,
) {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse::<u32>().ok())
        .unwrap_or(config.cases);
    let base = name_hash(name);
    let max_rejects = cases.saturating_mul(16).saturating_add(256);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut iteration = 0u64;
    while passed < cases {
        let seed = base ^ iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = SmallRng::seed_from_u64(seed);
        // Catch plain `assert!` panics too, so every failure mode reports
        // the seed that reproduces it.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        match outcome {
            Ok(Ok(())) => passed += 1,
            Ok(Err(test_runner::TestCaseError::Reject(_))) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "proptest {name}: too many rejected inputs \
                         ({rejected} rejects for {passed} passes)"
                    );
                }
            }
            Ok(Err(test_runner::TestCaseError::Fail(msg))) => {
                panic!(
                    "proptest {name} failed at iteration {iteration} (seed {seed:#x}): {msg}\n\
                     to pin this case as a regression, add `cc {name} {seed:#x}` to \
                     proptest-regressions/<suite>.txt"
                );
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                panic!(
                    "proptest {name} panicked at iteration {iteration} (seed {seed:#x}): {msg}\n\
                     to pin this case as a regression, add `cc {name} {seed:#x}` to \
                     proptest-regressions/<suite>.txt"
                );
            }
        }
        iteration += 1;
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(
                    ::std::concat!("assertion failed: ", ::std::stringify!($cond)),
                ),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    __l,
                    __r
                )),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    ::std::format!($($fmt)+),
                    __l,
                    __r
                )),
            );
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    __l
                ),
            ));
        }
    }};
}

/// Rejects the current case (retried with fresh inputs) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::concat!("assumption failed: ", ::std::stringify!($cond)),
            ));
        }
    };
}

/// The proptest entry macro: wraps `fn name(pat in strategy, ...) { .. }`
/// items into `#[test]` functions driven by [`run_proptest`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_proptest(
                ::std::stringify!($name),
                &__config,
                |__rng| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
}

pub mod prelude {
    //! The glob-import surface mirroring `proptest::prelude`.

    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..8, x in 0.25f64..0.75, s in any::<u64>()) {
            prop_assert!((3..8).contains(&n));
            prop_assert!((0.25..0.75).contains(&x));
            let _ = s;
        }

        #[test]
        fn prop_map_and_tuples_compose(
            (a, b) in (1u32..5, 10u32..20).prop_map(|(a, b)| (a * 2, b))
        ) {
            prop_assert!(a % 2 == 0);
            prop_assert!((10..20).contains(&b));
        }

        #[test]
        fn vec_strategy_respects_size(v in prop::collection::vec(0usize..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn assume_rejects_and_retries(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        use crate::Strategy;
        let strat = (0u64..1000, 0.0f64..1.0);
        let mut r1 = crate::TestRng::seed_from_u64(5);
        let mut r2 = crate::TestRng::seed_from_u64(5);
        assert_eq!(strat.generate(&mut r1).0, strat.generate(&mut r2).0);
    }

    use rand::SeedableRng;
}
