//! In-tree shim of the `criterion` API surface used by this workspace:
//! `criterion_group!`/`criterion_main!`, benchmark groups, `iter` /
//! `iter_with_setup`, `BenchmarkId`, `Throughput`, `black_box`.
//!
//! Measurement is plain wall-clock sampling (warm-up, then `sample_size`
//! timed runs capped by `measurement_time`) with a summary line per
//! benchmark — no statistical analysis, HTML reports, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, so benchmarked results aren't
/// dead-code-eliminated.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per iteration, reported as a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A benchmark's identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Collected timings for one benchmark.
#[derive(Debug, Clone)]
pub struct SampleSummary {
    /// Per-sample wall-clock times.
    pub samples: Vec<Duration>,
}

impl SampleSummary {
    /// Mean sample time in seconds.
    pub fn mean_s(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(Duration::as_secs_f64).sum::<f64>() / self.samples.len() as f64
    }

    /// Fastest sample in seconds.
    pub fn min_s(&self) -> f64 {
        self.samples
            .iter()
            .map(Duration::as_secs_f64)
            .fold(f64::INFINITY, f64::min)
    }
}

/// The timing harness handed to benchmark closures.
pub struct Bencher<'m> {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    summary: &'m mut Option<SampleSummary>,
}

impl Bencher<'_> {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.run(|| {
            let start = Instant::now();
            black_box(routine());
            start.elapsed()
        });
    }

    /// Times `routine` on fresh un-timed `setup()` output each run.
    pub fn iter_with_setup<S, O, F, R>(&mut self, mut setup: F, mut routine: R)
    where
        F: FnMut() -> S,
        R: FnMut(S) -> O,
    {
        self.run(|| {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            start.elapsed()
        });
    }

    fn run(&mut self, mut timed_once: impl FnMut() -> Duration) {
        // Warm-up: run untimed until the warm-up budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            timed_once();
        }
        // Sampling: `sample_size` runs, stopping early only if the
        // measurement budget is exhausted (always keeping >= 1 sample).
        let mut samples = Vec::with_capacity(self.sample_size);
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            samples.push(timed_once());
            if measure_start.elapsed() > self.measurement && !samples.is_empty() {
                break;
            }
        }
        *self.summary = Some(SampleSummary { samples });
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    results: &'c mut Vec<(String, SampleSummary)>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Untimed warm-up budget before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Wall-clock budget for the sampling phase.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets the throughput reported for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut summary = None;
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            summary: &mut summary,
        };
        f(&mut bencher);
        self.record(&id, summary);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut summary = None;
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            summary: &mut summary,
        };
        f(&mut bencher, input);
        self.record(&id, summary);
        self
    }

    fn record(&mut self, id: &BenchmarkId, summary: Option<SampleSummary>) {
        let Some(summary) = summary else { return };
        let full = format!("{}/{}", self.name, id.id);
        let mean = summary.mean_s();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  ({:.0} elem/s)", n as f64 / mean)
            }
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!("  ({:.0} B/s)", n as f64 / mean)
            }
            _ => String::new(),
        };
        println!(
            "{full:<60} mean {:>12}  min {:>12}  ({} samples){rate}",
            format_time(mean),
            format_time(summary.min_s()),
            summary.samples.len()
        );
        self.results.push((full, summary));
    }

    /// Ends the group (kept for API parity; results are printed as each
    /// benchmark finishes).
    pub fn finish(&mut self) {}
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.4} s")
    } else if seconds >= 1e-3 {
        format!("{:.4} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.4} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, SampleSummary)>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- group {name}");
        BenchmarkGroup {
            name,
            sample_size: 100,
            warm_up: Duration::from_secs(3),
            measurement: Duration::from_secs(5),
            throughput: None,
            results: &mut self.results,
        }
    }

    /// Runs a standalone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    /// All recorded `(name, summary)` pairs, in run order.
    pub fn results(&self) -> &[(String, SampleSummary)] {
        &self.results
    }
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. --bench); accept
            // and ignore them like the real criterion does.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_records_samples() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(50));
            g.bench_function("noop", |b| b.iter(|| 1 + 1));
            g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &x| {
                b.iter_with_setup(|| x, |v| v * 2)
            });
            g.finish();
        }
        assert_eq!(c.results().len(), 2);
        assert!(c.results().iter().all(|(_, s)| !s.samples.is_empty()));
        assert_eq!(c.results()[0].0, "g/noop");
        assert_eq!(c.results()[1].0, "g/param/7");
    }
}
