//! In-tree shim of the `serde` API surface used by this workspace.
//!
//! Instead of serde's visitor machinery, serialization goes through a
//! JSON-shaped [`Value`] data model: `Serialize` renders a type to a
//! `Value`, `Deserialize` rebuilds it from one. The derive macros in
//! `serde_derive` generate both directions with serde's default wire
//! format (named struct → object, newtype → inner value, tuple struct →
//! array, externally tagged enums), so files written by this shim parse
//! with the real serde_json and vice versa — with one documented
//! exception: non-finite floats are written as the strings
//! `"Infinity"` / `"-Infinity"` / `"NaN"` rather than `null`, so the
//! intra-host infinite-bandwidth sentinel survives a round trip.

/// The self-describing data model every type serializes through.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative or fitting-in-i64 integer.
    I64(i64),
    /// Integer above `i64::MAX`.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Array(Vec<Value>),
    /// Map with string keys; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Human-readable name of the value's shape, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The object's entries, or an error naming `ctx`.
    pub fn expect_object(&self, ctx: &str) -> Result<&[(String, Value)], DeError> {
        match self {
            Value::Object(pairs) => Ok(pairs),
            other => Err(DeError::new(format!(
                "{ctx}: expected object, found {}",
                other.kind()
            ))),
        }
    }

    /// The array's elements, or an error naming `ctx`.
    pub fn expect_array(&self, ctx: &str) -> Result<&[Value], DeError> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(DeError::new(format!(
                "{ctx}: expected array, found {}",
                other.kind()
            ))),
        }
    }

    /// The array's elements checked to be exactly `len` long.
    pub fn expect_tuple(&self, len: usize, ctx: &str) -> Result<&[Value], DeError> {
        let items = self.expect_array(ctx)?;
        if items.len() != len {
            return Err(DeError::new(format!(
                "{ctx}: expected array of length {len}, found length {}",
                items.len()
            )));
        }
        Ok(items)
    }
}

/// Deserialization error: a plain message, like serde_json's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types renderable to the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a `Value`.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a `Value`.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

pub mod de {
    //! Deserialization helpers mirroring `serde::de`.

    /// Owned deserialization marker; with the `Value` model every
    /// [`crate::Deserialize`] is already owned.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}

    pub use crate::DeError as Error;
}

pub mod ser {
    //! Serialization helpers mirroring `serde::ser`.
    pub use crate::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Fetches and deserializes a required struct field from object entries
/// (used by derive-generated code).
pub fn __field<T: Deserialize>(
    pairs: &[(String, Value)],
    key: &str,
    ctx: &str,
) -> Result<T, DeError> {
    match pairs.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v).map_err(|e| DeError::new(format!("{ctx}.{key}: {e}"))),
        None => Err(DeError::new(format!("{ctx}: missing field `{key}`"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: i128 = match value {
                    Value::I64(n) => *n as i128,
                    Value::U64(n) => *n as i128,
                    other => {
                        return Err(DeError::new(format!(
                            "expected integer, found {}", other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| {
                    DeError::new(format!("integer {wide} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as u64;
                if n <= i64::MAX as u64 {
                    Value::I64(n as i64)
                } else {
                    Value::U64(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: u64 = match value {
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::U64(n) => *n,
                    Value::I64(n) => {
                        return Err(DeError::new(format!(
                            "integer {n} out of range for {}", stringify!($t)
                        )))
                    }
                    other => {
                        return Err(DeError::new(format!(
                            "expected integer, found {}", other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| {
                    DeError::new(format!("integer {wide} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::F64(x) => Ok(*x),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            // Non-finite sentinel strings written by the serializer.
            Value::Str(s) if s == "Infinity" => Ok(f64::INFINITY),
            Value::Str(s) if s == "-Infinity" => Ok(f64::NEG_INFINITY),
            Value::Str(s) if s == "NaN" => Ok(f64::NAN),
            other => Err(DeError::new(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::new(format!(
                "expected single-char string, found {}",
                other.kind()
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .expect_array("Vec")?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = value.expect_tuple(N, "array")?;
        let parsed: Result<Vec<T>, DeError> = items.iter().map(T::from_value).collect();
        parsed.map(|v| v.try_into().expect("length checked"))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+) of $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value.expect_tuple($len, "tuple")?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0) of 1;
    (A.0, B.1) of 2;
    (A.0, B.1, C.2) of 3;
    (A.0, B.1, C.2, D.3) of 4;
}

impl<K: Serialize + ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_through_value() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
    }

    #[test]
    fn nonfinite_floats_roundtrip_via_sentinel_strings() {
        let v = Value::Str("Infinity".to_string());
        assert_eq!(f64::from_value(&v).unwrap(), f64::INFINITY);
        let v = Value::Str("-Infinity".to_string());
        assert_eq!(f64::from_value(&v).unwrap(), f64::NEG_INFINITY);
        let v = Value::Str("NaN".to_string());
        assert!(f64::from_value(&v).unwrap().is_nan());
    }

    #[test]
    fn containers_roundtrip_through_value() {
        let xs = vec![(1u32, 2u32), (3, 4)];
        let back: Vec<(u32, u32)> = Deserialize::from_value(&xs.to_value()).unwrap();
        assert_eq!(back, xs);
        let opt: Option<u64> = None;
        assert_eq!(opt.to_value(), Value::Null);
        let got: Option<u64> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(got, None);
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&Value::I64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
    }

    #[test]
    fn missing_field_names_context() {
        let pairs = vec![("a".to_string(), Value::I64(1))];
        let err = __field::<u32>(&pairs, "b", "Foo").unwrap_err();
        assert!(err.to_string().contains("missing field `b`"));
    }
}
