//! In-tree shim of the `rand` 0.8 API surface used by this workspace.
//!
//! Provides the trait trio (`RngCore`, `SeedableRng`, `Rng`), the
//! xoshiro256++ [`rngs::SmallRng`] (the same generator the real crate
//! uses on 64-bit targets, seeded through SplitMix64), uniform range
//! sampling for the integer and float types the workspace draws, and
//! [`seq::SliceRandom`] with Fisher–Yates `shuffle`/`choose`.
//!
//! Streams are fully deterministic functions of the seed — the parallel
//! trial engine depends on that for bit-identical replay.

/// The backend trait every generator implements.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction, including the SplitMix64-based `seed_from_u64`
/// the workspace uses everywhere.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 (matching the
    /// construction the real `rand` crate documents).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible by [`Rng::gen`] from raw bits.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Marker for types usable with [`Rng::gen_range`].
pub trait SampleUniform: Sized {}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough integer draw in `[0, span)` via 128-bit widening
/// multiply (Lemire's method without the rejection step; the bias at the
/// workspace's span sizes is < 2^-40 and determinism is what matters).
#[inline]
fn uniform_u64(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {}
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

signed_sample_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The user-facing convenience trait, blanket-implemented for every
/// [`RngCore`] (including `dyn RngCore`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, Rge>(&mut self, range: Rge) -> T
    where
        T: SampleUniform,
        Rge: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small, fast generator the real `rand` crate
    /// backs `SmallRng` with on 64-bit targets.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    pub mod mock {
        //! Deterministic mock generators for tests.

        use crate::RngCore;

        /// Yields `initial`, `initial + increment`, ... — useful for
        /// driving randomized code down a known path in tests.
        #[derive(Clone, Debug)]
        pub struct StepRng {
            value: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates a generator starting at `initial`, stepping by
            /// `increment`.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    value: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            #[inline]
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }
            #[inline]
            fn next_u64(&mut self) -> u64 {
                let out = self.value;
                self.value = self.value.wrapping_add(self.increment);
                out
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            SmallRng { s }
        }
    }
}

/// Slice helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u64..=5);
            assert_eq!(y, 5);
            let f = rng.gen_range(1.5f64..=2.5);
            assert!((1.5..=2.5).contains(&f));
            let n = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn unit_float_is_half_open() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle staying sorted is ~1/50!");
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = SmallRng::seed_from_u64(3);
        let dy: &mut dyn RngCore = &mut rng;
        let x = dy.gen_range(0..10usize);
        assert!(x < 10);
        let f: f64 = dy.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = SmallRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let one = [42u8];
        assert_eq!(one.choose(&mut rng), Some(&42));
    }
}
