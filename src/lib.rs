//! # emumap
//!
//! A complete, from-scratch reproduction of **"A Heuristic for Mapping
//! Virtual Machines and Links in Emulation Testbeds"** (Calheiros, Buyya &
//! De Rose, ICPP 2009): the HMN heuristic, the paper's baselines, the
//! simulation substrate, the Table 1 workload generators, and the full
//! evaluation harness.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `emumap-graph` | graphs, Dijkstra/BFS/DFS, topology generators |
//! | [`model`] | `emumap-model` | clusters, virtual environments, mappings, Eqs. 1–10 |
//! | [`mapping`] | `emumap-core` | HMN, R, RA, HS, pool & consolidation extensions |
//! | [`sim`] | `emumap-sim` | CloudSim-equivalent DES, experiment runtime model |
//! | [`workloads`] | `emumap-workloads` | Table 1 scenario/workload generators |
//!
//! ## Quickstart
//!
//! ```
//! use emumap::prelude::*;
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! // The paper's cluster: 40 heterogeneous hosts in a 2-D torus.
//! let cluster = ClusterSpec::paper();
//! let mut rng = SmallRng::seed_from_u64(2009);
//! let phys = cluster.build(ClusterSpec::paper_torus(), &mut rng);
//!
//! // A 100-guest high-level virtual environment (2.5 guests per host).
//! let venv = VirtualEnvSpec::high_level(100, 0.02).generate(&mut rng);
//!
//! // Map it with HMN and check every constraint of the formal model.
//! let outcome = Hmn::new().map(&phys, &venv, &mut rng).expect("mappable");
//! assert_eq!(validate_mapping(&phys, &venv, &outcome.mapping), Ok(()));
//!
//! // Run the emulated experiment on the mapped testbed.
//! let result = run_experiment(&phys, &venv, &outcome.mapping, &ExperimentSpec::default());
//! println!(
//!     "objective = {:.1} MIPS stddev, experiment = {:.1}s",
//!     outcome.objective, result.total_s
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use emumap_core as mapping;
pub use emumap_graph as graph;
pub use emumap_model as model;
pub use emumap_sim as sim;
pub use emumap_workloads as workloads;

/// One-stop imports for the common workflow: build a cluster, generate a
/// virtual environment, map it, validate, simulate.
pub mod prelude {
    pub use emumap_core::{
        build_mapper, cluster_diagnostics, diagnose_route, lagrangian_bound_for_partial,
        residual_stddev_lower_bound, solve_exact, solve_exact_with, tightest_peer_bounds,
        AStarPruneConfig, AdmitReport, Annealing, AnnealingConfig, ApplyOutcome, ArTables, BestFit,
        BoundKind, ClusterDiagnostics, ConsolidatingHmn, ExactConfig, ExactOutcome, ExactSolution,
        ExactStats, ExactStatus, FirstFitDecreasing, HeuristicPool, Hmn, HmnConfig, HmnKsp,
        HostingDfs, HostingPolicy, LagrangianBound, LagrangianConfig, LagrangianScratch, LinkOrder,
        MapCache, MapError, MapOutcome, MapStats, Mapper, MapperConfig, MapperEntry,
        MigrationPolicy, PathMetric, PoolPolicy, RandomAStar, RandomDfs, RandomizedRounding,
        RemoveReport, RoundingConfig, RouteVerdict, ServeError, Session, Snapshot, StatusReport,
        TenantRecord, WorstFit, MAPPERS,
    };
    pub use emumap_graph::{generators, EdgeId, Graph, NodeId};
    pub use emumap_model::{
        objective, validate_mapping, GuestId, GuestSpec, HostSpec, Kbps, LinkSpec, Mapping, MemMb,
        Millis, Mips, PhysicalTopology, ResidualState, Route, StorGb, VLinkId, VLinkSpec,
        Violation, VirtualEnvironment, VmmOverhead,
    };
    pub use emumap_sim::{
        run_experiment, ExperimentResult, ExperimentSpec, NetworkModel, RateModel, SimTime,
    };
    pub use emumap_workloads::{
        instantiate, instantiate_both, paper_scenarios, ClusterSpec, ClusterTopology, Distribution,
        Instance, Range, Scenario, VirtualEnvSpec, WorkloadKind,
    };
}
